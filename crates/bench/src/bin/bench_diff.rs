//! Compares two `BENCH_throughput.json` documents — the committed
//! baseline and a freshly generated run — and renders a per-path
//! speedup-delta report plus the plan-quality table (greedy vs
//! cost-based search m-op counts and their within-run throughput ratio),
//! the latency-percentile table (delivery / flush-barrier / update-epoch
//! distributions from the instrumented run), and the per-m-op time
//! attribution table (where sampled wall time went).
//! Used by the non-gating `bench-diff` CI step so every PR carries an
//! artifact showing how each engine path moved relative to the numbers
//! committed in the repository.
//!
//! ```text
//! cargo run --release -p rumor-bench --bin bench_diff \
//!     BENCH_throughput.json throughput-ci.json [bench-diff.md]
//! ```
//!
//! The parser is deliberately minimal: it reads exactly the line-oriented
//! shape `rumor_bench::throughput::render_json` emits (one path object
//! per line), so the harness stays dependency-free. Absolute events/sec
//! are expected to differ across hosts — the *speedup vs per-event*
//! deltas are the comparable signal, which is why the report leads with
//! them. The tool always exits 0; it reports, it does not gate.

use std::fmt::Write as _;

/// One measured path: label, absolute rate, speedup vs per-event.
struct PathRow {
    path: String,
    events_per_sec: f64,
    speedup: f64,
}

/// One workload's rows, keyed by the workload name.
struct Workload {
    name: String,
    paths: Vec<PathRow>,
}

/// One plan-quality row: the same query set optimized under the greedy
/// driver and the cost-based search.
struct QualityRow {
    workload: String,
    queries: f64,
    greedy_mops: f64,
    cost_mops: f64,
    greedy_eps: f64,
    cost_eps: f64,
}

/// One latency-distribution row from the instrumented run.
struct LatencyRow {
    metric: String,
    count: f64,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    max_us: f64,
}

/// One per-m-op time-attribution row from the instrumented run.
struct AttributionRow {
    mop: String,
    op: String,
    events_in: f64,
    time_share: f64,
}

/// One multi-tenant server scenario row (loopback clients over TCP).
struct MultiTenantRow {
    scenario: String,
    clients: f64,
    registered: f64,
    events_per_sec: f64,
    delivery_p50_us: f64,
    delivery_p99_us: f64,
    shed_results: f64,
    events_saved: f64,
}

/// Everything the diff reads out of one rendered throughput document.
struct Doc {
    workloads: Vec<Workload>,
    plan_quality: Vec<QualityRow>,
    latency: Vec<LatencyRow>,
    time_attribution: Vec<AttributionRow>,
    multi_tenant: Vec<MultiTenantRow>,
}

/// Extracts the string value of `"key": "..."` from a line, if present.
fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the numeric value of `"key": 123.4` from a line, if present.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the workload, plan-quality, latency, and time-attribution
/// sections of a rendered throughput document. Stops at the `"churn"`
/// array (lifecycle latency is host-bound noise between runs and has no
/// speedup baseline to diff).
fn parse(doc: &str) -> Doc {
    let mut workloads: Vec<Workload> = Vec::new();
    let mut plan_quality: Vec<QualityRow> = Vec::new();
    let mut latency: Vec<LatencyRow> = Vec::new();
    let mut time_attribution: Vec<AttributionRow> = Vec::new();
    let mut multi_tenant: Vec<MultiTenantRow> = Vec::new();
    for line in doc.lines() {
        if line.contains("\"churn\"") {
            break;
        }
        if let Some(scenario) = field_str(line, "scenario") {
            // Multi-tenant rows carry a `scenario` key nothing else uses.
            if let (
                Some(clients),
                Some(registered),
                Some(eps),
                Some(p50),
                Some(p99),
                Some(shed),
                Some(saved),
            ) = (
                field_num(line, "clients"),
                field_num(line, "registered"),
                field_num(line, "events_per_sec"),
                field_num(line, "delivery_p50_us"),
                field_num(line, "delivery_p99_us"),
                field_num(line, "shed_results"),
                field_num(line, "events_saved"),
            ) {
                multi_tenant.push(MultiTenantRow {
                    scenario,
                    clients,
                    registered,
                    events_per_sec: eps,
                    delivery_p50_us: p50,
                    delivery_p99_us: p99,
                    shed_results: shed,
                    events_saved: saved,
                });
            }
        } else if let Some(metric) = field_str(line, "metric") {
            // Latency rows carry a `metric` key nothing else uses.
            if let (Some(count), Some(p50), Some(p90), Some(p99), Some(max)) = (
                field_num(line, "count"),
                field_num(line, "p50_us"),
                field_num(line, "p90_us"),
                field_num(line, "p99_us"),
                field_num(line, "max_us"),
            ) {
                latency.push(LatencyRow {
                    metric,
                    count,
                    p50_us: p50,
                    p90_us: p90,
                    p99_us: p99,
                    max_us: max,
                });
            }
        } else if let Some(mop) = field_str(line, "mop") {
            // Time-attribution rows key on the stable m-op label.
            if let (Some(op), Some(events_in), Some(share)) = (
                field_str(line, "op"),
                field_num(line, "events_in"),
                field_num(line, "time_share"),
            ) {
                time_attribution.push(AttributionRow {
                    mop,
                    op,
                    events_in,
                    time_share: share,
                });
            }
        } else if let Some(workload) = field_str(line, "workload") {
            // Plan-quality rows carry a `workload` key (the path rows use
            // `path`/`name`), so the two sections cannot shadow each other.
            if let (Some(queries), Some(gm), Some(cm), Some(ge), Some(ce)) = (
                field_num(line, "queries"),
                field_num(line, "greedy_mops"),
                field_num(line, "cost_mops"),
                field_num(line, "greedy_events_per_sec"),
                field_num(line, "cost_events_per_sec"),
            ) {
                plan_quality.push(QualityRow {
                    workload,
                    queries,
                    greedy_mops: gm,
                    cost_mops: cm,
                    greedy_eps: ge,
                    cost_eps: ce,
                });
            }
        } else if let Some(path) = field_str(line, "path") {
            if let (Some(eps), Some(speedup), Some(w)) = (
                field_num(line, "events_per_sec"),
                field_num(line, "speedup_vs_per_event"),
                workloads.last_mut(),
            ) {
                w.paths.push(PathRow {
                    path,
                    events_per_sec: eps,
                    speedup,
                });
            }
        } else if let Some(name) = field_str(line, "name") {
            workloads.push(Workload {
                name,
                paths: Vec::new(),
            });
        }
    }
    Doc {
        workloads,
        plan_quality,
        latency,
        time_attribution,
        multi_tenant,
    }
}

fn pct(new: f64, old: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new / old - 1.0) * 100.0
    }
}

fn render(baseline: &Doc, fresh: &Doc) -> String {
    let mut out = String::new();
    out.push_str("# Throughput delta vs committed baseline\n\n");
    out.push_str(
        "Speedup columns (vs the run's own per-event row) are the \
         host-independent signal; absolute ev/s move with the runner.\n\n",
    );
    for fw in &fresh.workloads {
        let Some(bw) = baseline.workloads.iter().find(|b| b.name == fw.name) else {
            let _ = writeln!(out, "## {} — new workload (no baseline)\n", fw.name);
            continue;
        };
        let _ = writeln!(out, "## {}\n", fw.name);
        out.push_str(
            "| path | base ev/s | fresh ev/s | Δ ev/s | base speedup | fresh speedup | Δ speedup |\n\
             |---|---:|---:|---:|---:|---:|---:|\n",
        );
        for fp in &fw.paths {
            match bw.paths.iter().find(|b| b.path == fp.path) {
                Some(bp) => {
                    let _ = writeln!(
                        out,
                        "| {} | {:.0} | {:.0} | {:+.1}% | {:.3} | {:.3} | {:+.3} |",
                        fp.path,
                        bp.events_per_sec,
                        fp.events_per_sec,
                        pct(fp.events_per_sec, bp.events_per_sec),
                        bp.speedup,
                        fp.speedup,
                        fp.speedup - bp.speedup,
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "| {} | — | {:.0} | — | — | {:.3} | — |",
                        fp.path, fp.events_per_sec, fp.speedup,
                    );
                }
            }
        }
        out.push('\n');
    }
    for bw in &baseline.workloads {
        if !fresh.workloads.iter().any(|f| f.name == bw.name) {
            let _ = writeln!(out, "## {} — dropped (baseline only)\n", bw.name);
        }
    }
    if !fresh.plan_quality.is_empty() {
        out.push_str("## Plan quality (greedy vs cost-based search)\n\n");
        out.push_str(
            "m-op counts are deterministic plan-shape signal; the cost/greedy \
             throughput ratio compares the two plans within one run, so it is \
             host-independent too.\n\n",
        );
        out.push_str(
            "| workload | queries | greedy m-ops | cost m-ops | m-ops saved | \
             cost/greedy ev/s | base cost/greedy | base greedy/cost m-ops |\n\
             |---|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for fq in &fresh.plan_quality {
            let ratio = if fq.greedy_eps == 0.0 {
                0.0
            } else {
                fq.cost_eps / fq.greedy_eps
            };
            match baseline
                .plan_quality
                .iter()
                .find(|b| b.workload == fq.workload)
            {
                Some(bq) => {
                    let base_ratio = if bq.greedy_eps == 0.0 {
                        0.0
                    } else {
                        bq.cost_eps / bq.greedy_eps
                    };
                    let _ = writeln!(
                        out,
                        "| {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.2}x | {:.2}x | {:.0}/{:.0} |",
                        fq.workload,
                        fq.queries,
                        fq.greedy_mops,
                        fq.cost_mops,
                        fq.greedy_mops - fq.cost_mops,
                        ratio,
                        base_ratio,
                        bq.greedy_mops,
                        bq.cost_mops,
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "| {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.2}x | — | — |",
                        fq.workload,
                        fq.queries,
                        fq.greedy_mops,
                        fq.cost_mops,
                        fq.greedy_mops - fq.cost_mops,
                        ratio,
                    );
                }
            }
        }
        out.push('\n');
        if baseline.plan_quality.is_empty() {
            out.push_str("(baseline document predates the plan-quality section)\n\n");
        }
    }
    if !fresh.latency.is_empty() {
        out.push_str("## Latency percentiles (instrumented run)\n\n");
        out.push_str(
            "Log-bucket lower bounds in microseconds; absolute values move \
             with the runner, so the Δ p99 column is the signal to read.\n\n",
        );
        out.push_str(
            "| metric | samples | p50 us | p90 us | p99 us | max us | base p99 us | Δ p99 |\n\
             |---|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for fl in &fresh.latency {
            match baseline.latency.iter().find(|b| b.metric == fl.metric) {
                Some(bl) => {
                    let _ = writeln!(
                        out,
                        "| {} | {:.0} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:+.1}% |",
                        fl.metric,
                        fl.count,
                        fl.p50_us,
                        fl.p90_us,
                        fl.p99_us,
                        fl.max_us,
                        bl.p99_us,
                        pct(fl.p99_us, bl.p99_us),
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "| {} | {:.0} | {:.1} | {:.1} | {:.1} | {:.1} | — | — |",
                        fl.metric, fl.count, fl.p50_us, fl.p90_us, fl.p99_us, fl.max_us,
                    );
                }
            }
        }
        out.push('\n');
        if baseline.latency.is_empty() {
            out.push_str("(baseline document predates the latency section)\n\n");
        }
    }
    if !fresh.time_attribution.is_empty() {
        out.push_str("## Time attribution (sampled per-m-op wall time)\n\n");
        out.push_str(
            "Share of attributed wall time per m-op in the instrumented run, \
             busiest first; compare against the baseline's split, not its \
             absolute nanoseconds.\n\n",
        );
        out.push_str(
            "| m-op | op | events in | time share | base share | Δ share |\n\
             |---|---|---:|---:|---:|---:|\n",
        );
        for ft in &fresh.time_attribution {
            match baseline.time_attribution.iter().find(|b| b.mop == ft.mop) {
                Some(bt) => {
                    let _ = writeln!(
                        out,
                        "| {} | {} | {:.0} | {:.1}% | {:.1}% | {:+.1}pp |",
                        ft.mop,
                        ft.op,
                        ft.events_in,
                        ft.time_share * 100.0,
                        bt.time_share * 100.0,
                        (ft.time_share - bt.time_share) * 100.0,
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "| {} | {} | {:.0} | {:.1}% | — | — |",
                        ft.mop,
                        ft.op,
                        ft.events_in,
                        ft.time_share * 100.0,
                    );
                }
            }
        }
        out.push('\n');
        if baseline.time_attribution.is_empty() {
            out.push_str("(baseline document predates the time-attribution section)\n\n");
        }
    }
    if !fresh.multi_tenant.is_empty() {
        out.push_str("## Multi-tenant server (loopback clients, Zipf query popularity)\n\n");
        out.push_str(
            "End-to-end over TCP: many clients, one shared plan. Absolute ev/s \
             and latency move with the runner; events saved is the deterministic \
             sharing-attribution signal, and shed must stay 0.\n\n",
        );
        out.push_str(
            "| scenario | clients | queries | ev/s | base ev/s | flush p50 us | flush p99 us | shed | events saved | base saved |\n\
             |---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for fm in &fresh.multi_tenant {
            match baseline
                .multi_tenant
                .iter()
                .find(|b| b.scenario == fm.scenario)
            {
                Some(bm) => {
                    let _ = writeln!(
                        out,
                        "| {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} |",
                        fm.scenario,
                        fm.clients,
                        fm.registered,
                        fm.events_per_sec,
                        bm.events_per_sec,
                        fm.delivery_p50_us,
                        fm.delivery_p99_us,
                        fm.shed_results,
                        fm.events_saved,
                        bm.events_saved,
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "| {} | {:.0} | {:.0} | {:.0} | — | {:.0} | {:.0} | {:.0} | {:.0} | — |",
                        fm.scenario,
                        fm.clients,
                        fm.registered,
                        fm.events_per_sec,
                        fm.delivery_p50_us,
                        fm.delivery_p99_us,
                        fm.shed_results,
                        fm.events_saved,
                    );
                }
            }
        }
        out.push('\n');
        if baseline.multi_tenant.is_empty() {
            out.push_str("(baseline document predates the multi-tenant section)\n\n");
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(base_path), Some(fresh_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_diff <baseline.json> <fresh.json> [out.md]");
        std::process::exit(2);
    };
    let baseline = parse(&std::fs::read_to_string(base_path).expect("read baseline"));
    let fresh = parse(&std::fs::read_to_string(fresh_path).expect("read fresh run"));
    let report = render(&baseline, &fresh);
    print!("{report}");
    if let Some(out_path) = args.get(2) {
        std::fs::write(out_path, &report).expect("write report");
        eprintln!("wrote {out_path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "workloads": [
    {
      "name": "w",
      "paths": [
        {"path": "per_event", "events_per_sec": 1000.0, "results_out": 5, "speedup_vs_per_event": 1.000},
        {"path": "push_batch", "events_per_sec": 2000.0, "results_out": 5, "speedup_vs_per_event": 2.000}
      ]
    }
  ],
  "plan_quality": [
    {"workload": "overlapping_aggs", "queries": 32, "greedy_mops": 26, "cost_mops": 3, "greedy_events_per_sec": 500.0, "cost_events_per_sec": 1250.0, "results_match": true}
  ],
  "latency": [
    {"metric": "delivery", "count": 420, "p50_us": 8.2, "p90_us": 32.8, "p99_us": 131.1, "max_us": 262.1},
    {"metric": "flush_barrier", "count": 9, "p50_us": 524.3, "p90_us": 1048.6, "p99_us": 1048.6, "max_us": 1500.0}
  ],
  "time_attribution": [
    {"mop": "m3", "op": "filter", "events_in": 500, "est_nanos": 120000, "time_share": 0.6100},
    {"mop": "m7", "op": "project", "events_in": 500, "est_nanos": 76000, "time_share": 0.3900}
  ],
  "multi_tenant": [
    {"scenario": "zipf_selects_200c_1024q", "clients": 200, "registered": 1024, "distinct_bodies": 60, "events": 20000, "events_per_sec": 12345.6, "results_out": 9999, "delivery_p50_us": 100.0, "delivery_p90_us": 200.0, "delivery_p99_us": 400.0, "delivery_max_us": 800.0, "shed_results": 0, "events_saved": 7777}
  ],
  "churn": [
    {"resident_queries": 8, "integrate_ms": 0.5, "remove_ms": 0.2, "churn_events_per_sec": 9.0, "results_out": 1}
  ]
}"#;

    #[test]
    fn parses_rendered_shape_and_skips_churn() {
        let doc = parse(DOC);
        assert_eq!(doc.workloads.len(), 1);
        assert_eq!(doc.workloads[0].paths.len(), 2);
        assert_eq!(doc.workloads[0].paths[1].path, "push_batch");
        assert_eq!(doc.workloads[0].paths[1].speedup, 2.0);
        assert_eq!(doc.plan_quality.len(), 1);
        assert_eq!(doc.plan_quality[0].workload, "overlapping_aggs");
        assert_eq!(doc.plan_quality[0].greedy_mops, 26.0);
        assert_eq!(doc.plan_quality[0].cost_mops, 3.0);
        assert_eq!(doc.latency.len(), 2);
        assert_eq!(doc.latency[0].metric, "delivery");
        assert_eq!(doc.latency[0].count, 420.0);
        assert_eq!(doc.latency[0].p99_us, 131.1);
        assert_eq!(doc.latency[1].max_us, 1500.0);
        assert_eq!(doc.time_attribution.len(), 2);
        assert_eq!(doc.time_attribution[0].mop, "m3");
        assert_eq!(doc.time_attribution[0].op, "filter");
        assert_eq!(doc.time_attribution[0].time_share, 0.61);
        assert_eq!(doc.multi_tenant.len(), 1);
        assert_eq!(doc.multi_tenant[0].scenario, "zipf_selects_200c_1024q");
        assert_eq!(doc.multi_tenant[0].clients, 200.0);
        assert_eq!(doc.multi_tenant[0].registered, 1024.0);
        assert_eq!(doc.multi_tenant[0].events_saved, 7777.0);
    }

    #[test]
    fn renders_multi_tenant_with_and_without_baseline() {
        let base = parse(DOC);
        let fresh = parse(&DOC.replace("\"events_saved\": 7777", "\"events_saved\": 8888"));
        let report = render(&base, &fresh);
        assert!(report.contains("## Multi-tenant server"));
        assert!(report.contains(
            "| zipf_selects_200c_1024q | 200 | 1024 | 12346 | 12346 | 100 | 400 | 0 | 8888 | 7777 |"
        ));

        // A baseline predating the section must not lose the fresh rows.
        let old_base = parse(&DOC.replace("zipf_selects", "renamed_scenario"));
        let report = render(&old_base, &fresh);
        assert!(report.contains(
            "| zipf_selects_200c_1024q | 200 | 1024 | 12346 | — | 100 | 400 | 0 | 8888 | — |"
        ));
    }

    #[test]
    fn renders_latency_and_attribution_with_and_without_baseline() {
        let base = parse(DOC);
        let fresh = parse(&DOC.replace("\"p99_us\": 131.1", "\"p99_us\": 262.1"));
        let report = render(&base, &fresh);
        assert!(report.contains("## Latency percentiles"));
        assert!(report.contains("| delivery | 420 | 8.2 | 32.8 | 262.1 | 262.1 | 131.1 | +99.9% |"));
        assert!(report.contains("## Time attribution"));
        assert!(report.contains("| m3 | filter | 500 | 61.0% | 61.0% | +0.0pp |"));

        // A baseline predating the sections keeps the fresh rows, with
        // em-dashes where the comparison columns would go.
        let old_base = parse(
            &DOC.replace("delivery", "renamed_metric")
                .replace("\"mop\": \"m3\"", "\"mop\": \"m9\""),
        );
        let report = render(&old_base, &fresh);
        assert!(report.contains("| delivery | 420 | 8.2 | 32.8 | 262.1 | 262.1 | — | — |"));
        assert!(report.contains("| m3 | filter | 500 | 61.0% | — | — |"));
    }

    #[test]
    fn renders_deltas_for_matching_paths() {
        let base = parse(DOC);
        let fresh = parse(&DOC.replace("2000.0", "3000.0").replace("2.000", "3.000"));
        let report = render(&base, &fresh);
        assert!(report.contains("| push_batch | 2000 | 3000 | +50.0% | 2.000 | 3.000 | +1.000 |"));
    }

    #[test]
    fn renders_plan_quality_with_and_without_baseline() {
        let base = parse(DOC);
        let fresh = parse(&DOC.replace("\"cost_mops\": 3", "\"cost_mops\": 4"));
        let report = render(&base, &fresh);
        assert!(report.contains("## Plan quality"));
        assert!(report.contains("| overlapping_aggs | 32 | 26 | 4 | 22 | 2.50x | 2.50x | 26/3 |"));

        // A baseline predating the section must not lose the fresh rows.
        let old_base = parse(&DOC.replace("overlapping_aggs", "renamed"));
        let report = render(&old_base, &fresh);
        assert!(report.contains("| overlapping_aggs | 32 | 26 | 4 | 22 | 2.50x | — | — |"));
    }
}
