//! Compares two `BENCH_throughput.json` documents — the committed
//! baseline and a freshly generated run — and renders a per-path
//! speedup-delta report. Used by the non-gating `bench-diff` CI step so
//! every PR carries an artifact showing how each engine path moved
//! relative to the numbers committed in the repository.
//!
//! ```text
//! cargo run --release -p rumor-bench --bin bench_diff \
//!     BENCH_throughput.json throughput-ci.json [bench-diff.md]
//! ```
//!
//! The parser is deliberately minimal: it reads exactly the line-oriented
//! shape `rumor_bench::throughput::render_json` emits (one path object
//! per line), so the harness stays dependency-free. Absolute events/sec
//! are expected to differ across hosts — the *speedup vs per-event*
//! deltas are the comparable signal, which is why the report leads with
//! them. The tool always exits 0; it reports, it does not gate.

use std::fmt::Write as _;

/// One measured path: label, absolute rate, speedup vs per-event.
struct PathRow {
    path: String,
    events_per_sec: f64,
    speedup: f64,
}

/// One workload's rows, keyed by the workload name.
struct Workload {
    name: String,
    paths: Vec<PathRow>,
}

/// Extracts the string value of `"key": "..."` from a line, if present.
fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the numeric value of `"key": 123.4` from a line, if present.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the workload sections of a rendered throughput document. Stops
/// at the `"churn"` array (lifecycle latency is host-bound noise between
/// runs and has no speedup baseline to diff).
fn parse(doc: &str) -> Vec<Workload> {
    let mut workloads: Vec<Workload> = Vec::new();
    for line in doc.lines() {
        if line.contains("\"churn\"") {
            break;
        }
        if let Some(path) = field_str(line, "path") {
            if let (Some(eps), Some(speedup), Some(w)) = (
                field_num(line, "events_per_sec"),
                field_num(line, "speedup_vs_per_event"),
                workloads.last_mut(),
            ) {
                w.paths.push(PathRow {
                    path,
                    events_per_sec: eps,
                    speedup,
                });
            }
        } else if let Some(name) = field_str(line, "name") {
            workloads.push(Workload {
                name,
                paths: Vec::new(),
            });
        }
    }
    workloads
}

fn pct(new: f64, old: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new / old - 1.0) * 100.0
    }
}

fn render(baseline: &[Workload], fresh: &[Workload]) -> String {
    let mut out = String::new();
    out.push_str("# Throughput delta vs committed baseline\n\n");
    out.push_str(
        "Speedup columns (vs the run's own per-event row) are the \
         host-independent signal; absolute ev/s move with the runner.\n\n",
    );
    for fw in fresh {
        let Some(bw) = baseline.iter().find(|b| b.name == fw.name) else {
            let _ = writeln!(out, "## {} — new workload (no baseline)\n", fw.name);
            continue;
        };
        let _ = writeln!(out, "## {}\n", fw.name);
        out.push_str(
            "| path | base ev/s | fresh ev/s | Δ ev/s | base speedup | fresh speedup | Δ speedup |\n\
             |---|---:|---:|---:|---:|---:|---:|\n",
        );
        for fp in &fw.paths {
            match bw.paths.iter().find(|b| b.path == fp.path) {
                Some(bp) => {
                    let _ = writeln!(
                        out,
                        "| {} | {:.0} | {:.0} | {:+.1}% | {:.3} | {:.3} | {:+.3} |",
                        fp.path,
                        bp.events_per_sec,
                        fp.events_per_sec,
                        pct(fp.events_per_sec, bp.events_per_sec),
                        bp.speedup,
                        fp.speedup,
                        fp.speedup - bp.speedup,
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "| {} | — | {:.0} | — | — | {:.3} | — |",
                        fp.path, fp.events_per_sec, fp.speedup,
                    );
                }
            }
        }
        out.push('\n');
    }
    for bw in baseline {
        if !fresh.iter().any(|f| f.name == bw.name) {
            let _ = writeln!(out, "## {} — dropped (baseline only)\n", bw.name);
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(base_path), Some(fresh_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_diff <baseline.json> <fresh.json> [out.md]");
        std::process::exit(2);
    };
    let baseline = parse(&std::fs::read_to_string(base_path).expect("read baseline"));
    let fresh = parse(&std::fs::read_to_string(fresh_path).expect("read fresh run"));
    let report = render(&baseline, &fresh);
    print!("{report}");
    if let Some(out_path) = args.get(2) {
        std::fs::write(out_path, &report).expect("write report");
        eprintln!("wrote {out_path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "workloads": [
    {
      "name": "w",
      "paths": [
        {"path": "per_event", "events_per_sec": 1000.0, "results_out": 5, "speedup_vs_per_event": 1.000},
        {"path": "push_batch", "events_per_sec": 2000.0, "results_out": 5, "speedup_vs_per_event": 2.000}
      ]
    }
  ],
  "churn": [
    {"resident_queries": 8, "integrate_ms": 0.5, "remove_ms": 0.2, "churn_events_per_sec": 9.0, "results_out": 1}
  ]
}"#;

    #[test]
    fn parses_rendered_shape_and_skips_churn() {
        let ws = parse(DOC);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].paths.len(), 2);
        assert_eq!(ws[0].paths[1].path, "push_batch");
        assert_eq!(ws[0].paths[1].speedup, 2.0);
    }

    #[test]
    fn renders_deltas_for_matching_paths() {
        let base = parse(DOC);
        let fresh = parse(&DOC.replace("2000.0", "3000.0").replace("2.000", "3.000"));
        let report = render(&base, &fresh);
        assert!(report.contains("| push_batch | 2000 | 3000 | +50.0% | 2.000 | 3.000 | +1.000 |"));
    }
}
