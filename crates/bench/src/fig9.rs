//! Figure 9: the Workload 1 event-pattern sweep (σθ1(S) ;θ2∧θ3 T) —
//! normalized throughput of RUMOR query plans vs Cayuga automata while
//! varying (a) the number of queries, (b) the constant domain size, (c) the
//! window-length domain size, and (d) the Zipf parameter.

use rumor_core::{OptimizerConfig, PlanGraph};
use rumor_types::Schema;
use rumor_workloads::synth::{st_events, StTag};
use rumor_workloads::{workload1, Params};

use crate::{measure_cayuga, measure_rumor, normalize, print_table, FeedEvent, RunStats, Scale};

/// Measures one parameter point on both engines.
pub fn measure_point(params: &Params, runs: usize) -> (RunStats, RunStats) {
    let queries = workload1::generate(params);

    // RUMOR side.
    let mut plan = PlanGraph::new();
    let s = plan
        .add_source("S", Schema::ints(params.num_attrs), None)
        .unwrap();
    let t = plan
        .add_source("T", Schema::ints(params.num_attrs), None)
        .unwrap();
    let plan = crate::optimized_plan(
        plan,
        queries.iter().map(|q| q.plan.clone()),
        OptimizerConfig::default(),
    );
    let events = st_events(params);
    let feed: Vec<FeedEvent> = events
        .iter()
        .map(|e| match e.tag {
            StTag::S => FeedEvent::Plain(s, e.tuple.clone()),
            StTag::T => FeedEvent::Plain(t, e.tuple.clone()),
        })
        .collect();
    let rumor = measure_rumor(&plan, &feed, 1, runs);

    // Cayuga side (same queries, same events).
    let automata: Vec<_> = queries.iter().map(|q| q.automaton.clone()).collect();
    let cayuga_events: Vec<(&'static str, _)> = events
        .iter()
        .map(|e| {
            (
                match e.tag {
                    StTag::S => "S",
                    StTag::T => "T",
                },
                e.tuple.clone(),
            )
        })
        .collect();
    let cayuga = measure_cayuga(&automata, &cayuga_events, 1, runs);
    (rumor, cayuga)
}

fn sweep(points: Vec<(String, Params)>, runs: usize, title: &str, xlabel: &str) {
    let mut xs = Vec::new();
    let mut rumor = Vec::new();
    let mut cayuga = Vec::new();
    for (label, params) in points {
        let (r, c) = measure_point(&params, runs);
        eprintln!(
            "  {xlabel}={label}: rumor {:.0} ev/s ({} results), cayuga {:.0} ev/s ({} results)",
            r.throughput, r.results, c.throughput, c.results
        );
        xs.push(label);
        rumor.push(r.throughput);
        cayuga.push(c.throughput);
    }
    print_table(
        title,
        xlabel,
        &xs,
        &[
            ("RUMOR Query Plan (norm.)".to_string(), normalize(&rumor)),
            ("Cayuga Automata (norm.)".to_string(), normalize(&cayuga)),
        ],
    );
}

/// Runs one panel of Figure 9.
pub fn run(panel: &str, scale: Scale) {
    let base = Params::default().with_tuples(scale.tuples());
    let runs = scale.runs();
    match panel {
        "a" => sweep(
            scale
                .query_counts()
                .into_iter()
                .map(|n| (n.to_string(), base.clone().with_queries(n)))
                .collect(),
            runs,
            "Figure 9(a): Workload 1, varying the number of queries",
            "queries",
        ),
        "b" => sweep(
            scale
                .domains()
                .into_iter()
                .map(|d| (d.to_string(), base.clone().with_const_domain(d)))
                .collect(),
            runs,
            "Figure 9(b): Workload 1, varying the constant domain size",
            "constant domain",
        ),
        "c" => sweep(
            scale
                .domains()
                .into_iter()
                .map(|d| (d.to_string(), base.clone().with_window_domain(d as u64)))
                .collect(),
            runs,
            "Figure 9(c): Workload 1, varying the window length domain size",
            "window domain",
        ),
        "d" => sweep(
            scale
                .zipfs()
                .into_iter()
                .map(|z| (format!("{z:.1}"), base.clone().with_zipf(z)))
                .collect(),
            runs,
            "Figure 9(d): Workload 1, varying the Zipf parameter",
            "zipf",
        ),
        other => eprintln!("unknown panel `{other}` (use a|b|c|d)"),
    }
}
