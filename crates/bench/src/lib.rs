//! # rumor-bench
//!
//! The harness that regenerates every figure of the paper's evaluation
//! (§5): Figure 9 (Workload 1, RUMOR vs Cayuga, normalized throughput),
//! Figure 10 (Workload 2 AI-index queries and Workload 3 channel sharing),
//! and Figure 11 (hybrid queries over the simulated performance-counter
//! dataset).
//!
//! Binaries: `fig9`, `fig10`, `fig11` (one per figure; pass the panel
//! letter), and `run_all` which regenerates everything and prints the
//! markdown tables recorded in EXPERIMENTS.md.
//!
//! The measurement protocol follows §5: warmup passes first, then repeated
//! measured runs whose throughputs are averaged; cross-system comparisons
//! report *normalized* throughput (each series divided by its own
//! lightest-workload value), within-system comparisons report absolute
//! events/second.

#![warn(missing_docs)]

pub mod fig10;
pub mod fig11;
pub mod fig9;
pub mod multi_tenant;
pub mod throughput;

use std::time::Instant;

use rumor_cayuga::{Automaton, CayugaEngine};
use rumor_core::{Optimizer, OptimizerConfig, PlanGraph};
use rumor_engine::exec::{CountingSink, ExecutablePlan};
use rumor_types::{Membership, SourceId, Tuple};

/// How big the sweeps are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale: smaller query counts and inputs; minutes, not hours.
    Quick,
    /// The paper's parameters (§5.1: 100k+ tuples, up to 100k queries).
    Full,
}

impl Scale {
    /// Parses `quick` / `full`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Query-count sweep for Figures 9(a) and 10.
    pub fn query_counts(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![1, 10, 100, 1000, 10_000],
            Scale::Full => vec![1, 10, 100, 1000, 10_000, 100_000],
        }
    }

    /// Domain-size sweep for Figures 9(b) and 9(c).
    pub fn domains(&self) -> Vec<i64> {
        vec![10, 100, 1000, 10_000, 100_000]
    }

    /// Zipf sweep for Figure 9(d).
    pub fn zipfs(&self) -> Vec<f64> {
        vec![1.2, 1.4, 1.6, 1.8, 2.0]
    }

    /// Input size per run.
    pub fn tuples(&self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 100_000,
        }
    }

    /// Measured repetitions (the paper uses ten).
    pub fn runs(&self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Full => 10,
        }
    }

    /// Perfmon trace horizon in seconds. The paper records 24 hours; the
    /// full scale here uses a 4-hour slice — the horizon only scales run
    /// length (9M vs 1.5M tuples), not per-event work, and 4 hours already
    /// exercises hundreds of ramp episodes per process.
    pub fn perfmon_secs(&self) -> u64 {
        match self {
            Scale::Quick => 1200,
            Scale::Full => 14_400,
        }
    }
}

/// One prepared input event for a RUMOR run.
#[derive(Debug, Clone)]
pub enum FeedEvent {
    /// A plain source tuple.
    Plain(SourceId, Tuple),
    /// A channel-source tuple with explicit membership (Workload 3).
    Channel(SourceId, Tuple, Membership),
}

/// Measured throughput (input events per second) and output count.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Input events per second.
    pub throughput: f64,
    /// Query results produced per run.
    pub results: u64,
}

/// Runs a compiled plan over the feed with the §5 protocol.
pub fn measure_rumor(
    plan: &PlanGraph,
    events: &[FeedEvent],
    warmup: usize,
    runs: usize,
) -> RunStats {
    let mut results = 0;
    for _ in 0..warmup {
        let (_, r) = run_rumor_once(plan, events);
        results = r;
    }
    let mut acc = 0.0;
    let runs = runs.max(1);
    for _ in 0..runs {
        let (rate, r) = run_rumor_once(plan, events);
        acc += rate;
        results = r;
    }
    RunStats {
        throughput: acc / runs as f64,
        results,
    }
}

fn run_rumor_once(plan: &PlanGraph, events: &[FeedEvent]) -> (f64, u64) {
    let mut exec = ExecutablePlan::new(plan).expect("plan compiles");
    let mut sink = CountingSink::default();
    // Throughput denominators count *stream* tuples: a channel tuple
    // belonging to k streams is logically k stream tuples (§3.1, "a channel
    // is equivalent to the union of a set of streams"). This is what makes
    // the Workload 3 comparison fair — both feeds carry the same logical
    // content — and what Figure 10(d) measures when capacity grows.
    let mut logical_events = 0u64;
    let start = Instant::now();
    for ev in events {
        match ev {
            FeedEvent::Plain(src, tuple) => {
                logical_events += 1;
                exec.push(*src, tuple.clone(), &mut sink).expect("push")
            }
            FeedEvent::Channel(src, tuple, membership) => {
                logical_events += membership.len() as u64;
                exec.push_channel(*src, tuple.clone(), membership.clone(), &mut sink)
                    .expect("push channel")
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (logical_events as f64 / elapsed, sink.total)
}

/// Runs the Cayuga engine over `(stream, tuple)` events with the same
/// protocol. The engine (and its instance state) is rebuilt per run.
pub fn measure_cayuga(
    automata: &[Automaton],
    events: &[(&'static str, Tuple)],
    warmup: usize,
    runs: usize,
) -> RunStats {
    let run_once = || {
        let mut engine = CayugaEngine::new();
        for a in automata {
            engine.add_automaton(a);
        }
        let mut results = 0u64;
        let start = Instant::now();
        for (stream, tuple) in events {
            engine.on_event(stream, tuple, &mut |_, _| results += 1);
        }
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        (events.len() as f64 / elapsed, results)
    };
    let mut results = 0;
    for _ in 0..warmup {
        results = run_once().1;
    }
    let mut acc = 0.0;
    let runs = runs.max(1);
    for _ in 0..runs {
        let (rate, r) = run_once();
        acc += rate;
        results = r;
    }
    RunStats {
        throughput: acc / runs as f64,
        results,
    }
}

/// Builds and optimizes a plan for a set of logical queries.
pub fn optimized_plan(
    mut plan: PlanGraph,
    queries: impl IntoIterator<Item = rumor_core::LogicalPlan>,
    config: OptimizerConfig,
) -> PlanGraph {
    for q in queries {
        plan.add_query(&q).expect("register query");
    }
    Optimizer::new(config)
        .optimize(&mut plan)
        .expect("optimize");
    plan
}

/// Normalizes a series by its first (lightest-workload) value — the
/// normalization used throughout §5.2, after SASE \[21\].
pub fn normalize(series: &[f64]) -> Vec<f64> {
    let base = series.first().copied().unwrap_or(1.0).max(1e-9);
    series.iter().map(|v| v / base).collect()
}

/// Prints a markdown table: one row per x value, one column per series.
pub fn print_table(title: &str, xlabel: &str, xs: &[String], series: &[(String, Vec<f64>)]) {
    println!("\n### {title}\n");
    print!("| {xlabel} |");
    for (name, _) in series {
        print!(" {name} |");
    }
    println!();
    print!("|---|");
    for _ in series {
        print!("---|");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("| {x} |");
        for (_, vals) in series {
            match vals.get(i) {
                Some(v) if *v >= 100.0 => print!(" {v:.0} |"),
                Some(v) => print!(" {v:.3} |"),
                None => print!(" - |"),
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_uses_first_point() {
        let n = normalize(&[200.0, 100.0, 50.0]);
        assert_eq!(n, vec![1.0, 0.5, 0.25]);
        assert!(normalize(&[]).is_empty());
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("x"), None);
        assert!(Scale::Full.query_counts().contains(&100_000));
        assert!(!Scale::Quick.query_counts().contains(&100_000));
    }
}
