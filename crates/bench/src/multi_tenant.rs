//! Multi-tenant server benchmark: hundreds of loopback clients, one
//! shared plan.
//!
//! This is the paper's economic argument measured end-to-end: sharing
//! benefit is a function of the *concurrent query population*, and only
//! a multi-tenant front door realistically generates one. The scenario:
//!
//! * `clients` loopback [`rumor_server::Client`] connections, together
//!   registering **1024** selection queries whose predicate constants
//!   are drawn from a Zipf distribution ([`rumor_workloads::zipf`]) —
//!   the §5.1 model of commonality across independent tenants. Popular
//!   constants are registered by many clients, so the optimizer folds
//!   them into shared m-ops across connections.
//! * one feeder client streams events in `PUSH_BATCH` frames, with a
//!   `FLUSH` barrier per chunk;
//! * after each chunk, every tenant issues its own `FLUSH` and the
//!   round-trip (barrier to `FLUSHED`, results in between) is recorded
//!   per client in a reused [`rumor_engine::Histogram`] — that is the
//!   per-client delivery latency;
//! * at the end, one `STATS` call reads the sharing attribution
//!   (`total_events_saved`) and the server's shed counter off the wire.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_core::OptimizerConfig;
use rumor_engine::{Histogram, Rumor};
use rumor_server::{Client, Server, ServerConfig};
use rumor_types::Tuple;
use rumor_workloads::zipf::Zipf;

use crate::Scale;

/// Registered queries across all tenants (the sharing-attribution point
/// the report pins).
pub const TOTAL_QUERIES: usize = 1024;

/// Distinct predicate constants; queries concentrate on few of them
/// (Zipf), events are spread uniformly.
const CONSTANT_DOMAIN: usize = 64;

/// One multi-tenant run, as a `BENCH_throughput.json` row.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// Row key in the JSON (`"scenario"`).
    pub scenario: String,
    /// Loopback client connections (excluding the feeder).
    pub clients: usize,
    /// Queries registered across all clients.
    pub queries: usize,
    /// Distinct query texts (distinct Zipf-drawn constants).
    pub distinct_bodies: usize,
    /// Events streamed by the feeder.
    pub events: u64,
    /// Aggregate ingest throughput: events / wall time of the whole
    /// push + per-tenant-flush loop.
    pub events_per_sec: f64,
    /// Result tuples delivered to tenants over the wire.
    pub results_out: u64,
    /// Per-client delivery latency (flush round-trip), microseconds.
    pub delivery_p50_us: f64,
    /// 90th percentile.
    pub delivery_p90_us: f64,
    /// 99th percentile.
    pub delivery_p99_us: f64,
    /// Worst observed.
    pub delivery_max_us: f64,
    /// Result frames shed server-side (0 unless tenants stop reading).
    pub shed_results: u64,
    /// The engine's sharing attribution at this query population:
    /// operator invocations saved versus unshared per-query plans.
    pub events_saved: u64,
}

/// Scenario parameters per scale.
fn params(scale: Scale) -> (usize, u64, usize) {
    match scale {
        // (clients, events, chunk)
        Scale::Quick => (200, 20_000, 2_000),
        Scale::Full => (256, 100_000, 5_000),
    }
}

/// Runs the multi-tenant loopback scenario and reports one row.
pub fn run_multi_tenant(scale: Scale) -> MultiTenantReport {
    let (n_clients, n_events, chunk) = params(scale);

    let mut engine = Rumor::new(OptimizerConfig::default());
    engine
        .execute("CREATE STREAM mt (a INT, b INT, c INT);")
        .expect("seed stream");
    let server = Server::spawn(engine, ServerConfig::default()).expect("spawn server");

    // Zipf-popular constants: tenant queries crowd onto few predicates.
    let zipf = Zipf::new(CONSTANT_DOMAIN, 1.1);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut clients: Vec<Client> = (0..n_clients)
        .map(|_| Client::connect(server.addr()).expect("tenant connect"))
        .collect();
    let mut distinct = std::collections::HashSet::new();
    let mut registered = 0usize;
    'outer: loop {
        for client in clients.iter_mut() {
            if registered == TOTAL_QUERIES {
                break 'outer;
            }
            let k = zipf.sample_constant(&mut rng);
            distinct.insert(k);
            client
                .register(
                    &format!("q{registered}"),
                    &format!("SELECT * FROM mt WHERE a = {k}"),
                )
                .expect("register");
            registered += 1;
        }
    }

    let mut feeder = Client::connect(server.addr()).expect("feeder connect");
    let src = feeder.source("mt").expect("source table");

    // Events spread uniformly over the constant domain; popular
    // constants therefore fan out to many tenants per event.
    let events: Vec<(rumor_types::SourceId, Tuple)> = (0..n_events)
        .map(|i| {
            (
                src,
                Tuple::ints(
                    i,
                    &[
                        (i % CONSTANT_DOMAIN as u64) as i64,
                        (i % 97) as i64,
                        i as i64,
                    ],
                ),
            )
        })
        .collect();

    let mut delivery = Histogram::default();
    let mut results_out = 0u64;
    let start = Instant::now();
    for batch in events.chunks(chunk) {
        feeder.push_batch(batch.to_vec()).expect("push_batch");
        feeder.flush().expect("feeder flush");
        for client in clients.iter_mut() {
            let t0 = Instant::now();
            client.flush().expect("tenant flush");
            delivery.record(t0.elapsed().as_micros() as u64);
        }
        // Drain what the flush delivered so buffers stay flat.
        for client in clients.iter_mut() {
            for (_, tuples) in client.take_results() {
                results_out += tuples.len() as u64;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();

    let stats = feeder.stats_json().expect("stats over the wire");
    let events_saved = scan_u64(&stats, "\"total_events_saved\": ").unwrap_or(0);
    let shed_results = scan_u64(&stats, "\"shed_results\": ").unwrap_or(0);

    for client in clients {
        client.bye().expect("tenant bye");
    }
    feeder.bye().expect("feeder bye");
    server.shutdown().expect("graceful shutdown");

    MultiTenantReport {
        scenario: format!("zipf_selects_{n_clients}c_{TOTAL_QUERIES}q"),
        clients: n_clients,
        queries: TOTAL_QUERIES,
        distinct_bodies: distinct.len(),
        events: n_events,
        events_per_sec: n_events as f64 / elapsed,
        results_out,
        delivery_p50_us: delivery.p50() as f64,
        delivery_p90_us: delivery.p90() as f64,
        delivery_p99_us: delivery.p99() as f64,
        delivery_max_us: delivery.max() as f64,
        shed_results,
        events_saved,
    }
}

/// Pulls `<key><integer>` out of a JSON document the cheap way — the
/// document is the engine's own hand-rolled JSON, so the key strings are
/// stable and unambiguous.
fn scan_u64(json: &str, key: &str) -> Option<u64> {
    let at = json.find(key)? + key.len();
    let digits: String = json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_u64_reads_handrolled_json() {
        let doc =
            "{\"server\": {\"clients\": 3, \"shed_results\": 42}, \"total_events_saved\": 1234}";
        assert_eq!(scan_u64(doc, "\"shed_results\": "), Some(42));
        assert_eq!(scan_u64(doc, "\"total_events_saved\": "), Some(1234));
        assert_eq!(scan_u64(doc, "\"missing\": "), None);
    }
}
