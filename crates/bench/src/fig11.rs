//! Figure 11: the hybrid query workload (§5.3) over the simulated
//! performance-counter dataset D1 — n instances of Query 2 (each monitoring
//! all processes), with vs without channels, absolute throughput.

use rumor_core::{OptimizerConfig, PlanGraph};
use rumor_types::Schema;
use rumor_workloads::hybrid;
use rumor_workloads::perfmon::{generate, PerfmonConfig};

use crate::{measure_rumor, print_table, FeedEvent, RunStats, Scale};

/// Measures one (n queries, sel) point with and without channels.
pub fn measure_point(
    trace: &[rumor_types::Tuple],
    n: usize,
    sel: f64,
    runs: usize,
) -> (RunStats, RunStats) {
    let run_with = |config: OptimizerConfig| {
        let mut plan = PlanGraph::new();
        let cpu = plan.add_source("CPU", Schema::ints(2), None).unwrap();
        let plan = crate::optimized_plan(
            plan,
            hybrid::generate(n, sel).into_iter().map(|q| q.plan),
            config,
        );
        let feed: Vec<FeedEvent> = trace
            .iter()
            .map(|t| FeedEvent::Plain(cpu, t.clone()))
            .collect();
        measure_rumor(&plan, &feed, 1, runs)
    };
    let with_channel = run_with(OptimizerConfig::default());
    let without_channel = run_with(OptimizerConfig::without_channels());
    (with_channel, without_channel)
}

/// Runs one panel of Figure 11.
pub fn run(panel: &str, scale: Scale) {
    let trace = generate(&PerfmonConfig::d1(scale.perfmon_secs()));
    let runs = scale.runs();
    match panel {
        "a" => {
            let mut xs = Vec::new();
            let mut with_ch = Vec::new();
            let mut without_ch = Vec::new();
            for n in [5usize, 10, 15, 20, 25] {
                let (w, wo) = measure_point(&trace, n, 0.5, runs);
                eprintln!(
                    "  queries={n}: with channel {:.0} ev/s ({} results), without {:.0} ev/s ({} results)",
                    w.throughput, w.results, wo.throughput, wo.results
                );
                xs.push(n.to_string());
                with_ch.push(w.throughput);
                without_ch.push(wo.throughput);
            }
            print_table(
                "Figure 11(a): hybrid queries over D1 (sel = 0.5), throughput (events/s)",
                "hybrid queries",
                &xs,
                &[
                    ("Hybrid With Channel".to_string(), with_ch),
                    ("Hybrid W/o Channel".to_string(), without_ch),
                ],
            );
        }
        "b" => {
            let mut xs = Vec::new();
            let mut with_ch = Vec::new();
            let mut without_ch = Vec::new();
            for sel10 in [0usize, 2, 4, 6, 8, 10] {
                let sel = sel10 as f64 / 10.0;
                let (w, wo) = measure_point(&trace, 10, sel, runs);
                eprintln!(
                    "  sel={sel:.1}: with channel {:.0} ev/s ({} results), without {:.0} ev/s ({} results)",
                    w.throughput, w.results, wo.throughput, wo.results
                );
                xs.push(format!("{sel:.1}"));
                with_ch.push(w.throughput);
                without_ch.push(wo.throughput);
            }
            print_table(
                "Figure 11(b): hybrid queries over D1 (n = 10), varying starting-condition selectivity",
                "sel",
                &xs,
                &[
                    ("Hybrid With Channel".to_string(), with_ch),
                    ("Hybrid W/o Channel".to_string(), without_ch),
                ],
            );
        }
        other => eprintln!("unknown panel `{other}` (use a|b)"),
    }
}
