//! Figure 10: Workload 2 (the AI-index templates `S ;θ1∧θ2 T` and
//! `S µθ1∧θ2,θ3 T`, RUMOR vs Cayuga, normalized) and Workload 3 (channel
//! sharing across sharable streams, absolute throughput with vs without
//! channels).

use rumor_core::{OptimizerConfig, PlanGraph};
use rumor_types::{Membership, Schema};
use rumor_workloads::synth::{st_events, w3_channel_events, w3_round_robin_events, StTag, W3Event};
use rumor_workloads::{workload2, workload3, Params};

use crate::{measure_cayuga, measure_rumor, normalize, print_table, FeedEvent, RunStats, Scale};

fn measure_w2(params: &Params, mu: bool, runs: usize) -> (RunStats, RunStats) {
    let queries = if mu {
        workload2::generate_mu(params)
    } else {
        workload2::generate_seq(params)
    };
    let mut plan = PlanGraph::new();
    let s = plan
        .add_source("S", Schema::ints(params.num_attrs), None)
        .unwrap();
    let t = plan
        .add_source("T", Schema::ints(params.num_attrs), None)
        .unwrap();
    let plan = crate::optimized_plan(
        plan,
        queries.iter().map(|q| q.plan.clone()),
        OptimizerConfig::default(),
    );
    let events = st_events(params);
    let feed: Vec<FeedEvent> = events
        .iter()
        .map(|e| match e.tag {
            StTag::S => FeedEvent::Plain(s, e.tuple.clone()),
            StTag::T => FeedEvent::Plain(t, e.tuple.clone()),
        })
        .collect();
    let rumor = measure_rumor(&plan, &feed, 1, runs);

    let automata: Vec<_> = queries.iter().map(|q| q.automaton.clone()).collect();
    let cayuga_events: Vec<(&'static str, _)> = events
        .iter()
        .map(|e| {
            (
                match e.tag {
                    StTag::S => "S",
                    StTag::T => "T",
                },
                e.tuple.clone(),
            )
        })
        .collect();
    let cayuga = measure_cayuga(&automata, &cayuga_events, 1, runs);
    (rumor, cayuga)
}

fn w2_sweep(scale: Scale, mu: bool, title: &str) {
    let runs = scale.runs();
    let mut xs = Vec::new();
    let mut rumor = Vec::new();
    let mut cayuga = Vec::new();
    for n in scale.query_counts() {
        // The µ workload is substantially heavier (§5.2: "µ is a more
        // expensive operator to evaluate"); the paper's sweep stops at 10k.
        if n > 10_000 {
            continue;
        }
        let params = Params::default()
            .with_queries(n)
            .with_tuples(scale.tuples());
        let (r, c) = measure_w2(&params, mu, runs);
        eprintln!(
            "  queries={n}: rumor {:.0} ev/s ({} results), cayuga {:.0} ev/s ({} results)",
            r.throughput, r.results, c.throughput, c.results
        );
        xs.push(n.to_string());
        rumor.push(r.throughput);
        cayuga.push(c.throughput);
    }
    print_table(
        title,
        "queries",
        &xs,
        &[
            ("RUMOR Query Plan (norm.)".to_string(), normalize(&rumor)),
            ("Cayuga Automata (norm.)".to_string(), normalize(&cayuga)),
        ],
    );
}

/// Measures Workload 3 at one point: (with channel, without channel),
/// absolute throughput (both sides run on the same RUMOR infrastructure,
/// as in the paper).
pub fn measure_w3(params: &Params, capacity: usize, runs: usize) -> (RunStats, RunStats) {
    let queries = workload3::generate(params, capacity);

    // Channel mode: one channel source C encoding `capacity` streams.
    let mut plan = PlanGraph::new();
    let c = plan
        .add_source_group("C", Schema::ints(params.num_attrs), capacity)
        .unwrap();
    let t = plan
        .add_source("T", Schema::ints(params.num_attrs), None)
        .unwrap();
    let plan = crate::optimized_plan(
        plan,
        queries.iter().map(|q| q.channel_plan.clone()),
        OptimizerConfig::default(),
    );
    let feed: Vec<FeedEvent> = w3_channel_events(params, capacity)
        .into_iter()
        .map(|ev| match ev {
            W3Event::Channel(tuple) => FeedEvent::Channel(c, tuple, Membership::all(capacity)),
            W3Event::T(tuple) => FeedEvent::Plain(t, tuple),
            W3Event::Si(..) => unreachable!("channel feed has no Si events"),
        })
        .collect();
    let with_channel = measure_rumor(&plan, &feed, 1, runs);

    // Round-robin mode: `capacity` plain sources, channels disabled.
    let mut plan = PlanGraph::new();
    let mut sis = Vec::new();
    for i in 0..capacity {
        sis.push(
            plan.add_source(
                format!("S{i}"),
                Schema::ints(params.num_attrs),
                Some("w3".to_string()),
            )
            .unwrap(),
        );
    }
    let t = plan
        .add_source("T", Schema::ints(params.num_attrs), None)
        .unwrap();
    let plan = crate::optimized_plan(
        plan,
        queries.iter().map(|q| q.plain_plan.clone()),
        OptimizerConfig::without_channels(),
    );
    let feed: Vec<FeedEvent> = w3_round_robin_events(params, capacity)
        .into_iter()
        .map(|ev| match ev {
            W3Event::Si(i, tuple) => FeedEvent::Plain(sis[i], tuple),
            W3Event::T(tuple) => FeedEvent::Plain(t, tuple),
            W3Event::Channel(_) => unreachable!("round-robin feed has no channel events"),
        })
        .collect();
    let without_channel = measure_rumor(&plan, &feed, 1, runs);
    (with_channel, without_channel)
}

fn w3_query_sweep(scale: Scale) {
    let runs = scale.runs();
    let mut xs = Vec::new();
    let mut with_ch = Vec::new();
    let mut without_ch = Vec::new();
    for n in scale.query_counts() {
        if n > 10_000 {
            continue;
        }
        let params = Params::default()
            .with_queries(n)
            .with_tuples(scale.tuples());
        let (w, wo) = measure_w3(&params, 10, runs);
        eprintln!(
            "  queries={n}: with channel {:.0} ev/s, without {:.0} ev/s",
            w.throughput, wo.throughput
        );
        xs.push(n.to_string());
        with_ch.push(w.throughput);
        without_ch.push(wo.throughput);
    }
    print_table(
        "Figure 10(c): Workload 3, throughput (events/s), varying the number of queries",
        "queries",
        &xs,
        &[
            ("Seq With Channel".to_string(), with_ch),
            ("Seq W/o Channel".to_string(), without_ch),
        ],
    );
}

fn w3_capacity_sweep(scale: Scale) {
    let runs = scale.runs();
    let mut xs = Vec::new();
    let mut with_ch = Vec::new();
    let mut without_ch = Vec::new();
    for capacity in [5usize, 10, 15, 20, 25] {
        let params = Params::default().with_tuples(scale.tuples());
        let (w, wo) = measure_w3(&params, capacity, runs);
        eprintln!(
            "  capacity={capacity}: with channel {:.0} ev/s, without {:.0} ev/s",
            w.throughput, wo.throughput
        );
        xs.push(capacity.to_string());
        with_ch.push(w.throughput);
        without_ch.push(wo.throughput);
    }
    print_table(
        "Figure 10(d): Workload 3, throughput (events/s), varying the channel capacity",
        "channel capacity",
        &xs,
        &[
            ("Seq With Channel".to_string(), with_ch),
            ("Seq W/o Channel".to_string(), without_ch),
        ],
    );
}

/// Runs one panel of Figure 10.
pub fn run(panel: &str, scale: Scale) {
    match panel {
        "a" => w2_sweep(
            scale,
            false,
            "Figure 10(a): Workload 2 sequence queries, varying the number of queries",
        ),
        "b" => w2_sweep(
            scale,
            true,
            "Figure 10(b): Workload 2 µ queries, varying the number of queries",
        ),
        "c" => w3_query_sweep(scale),
        "d" => w3_capacity_sweep(scale),
        other => eprintln!("unknown panel `{other}` (use a|b|c|d)"),
    }
}
