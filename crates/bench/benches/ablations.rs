//! Ablation benchmarks for the design choices called out in DESIGN.md §5:
//! each one toggles a single sharing mechanism and measures the end-to-end
//! effect on a small fixed workload.
//!
//! * `predicate_index`: rule sσ's hash index vs one-by-one evaluation of
//!   the same selections (the naive m-op reference).
//! * `ai_index`: the shared sequence m-op's instance hash index vs the
//!   linear instance scan of the reference executor.
//! * `shared_join`: one max-window join state (rule s⋈) vs independent
//!   per-query join states.
//! * `channel_overhead`: a capacity-1 channel (the degenerate "plain
//!   stream" case) vs true per-stream emission — the §3.2 time-overhead
//!   trade-off at its break-even point.
//! * `rule_order`: optimizer cost and plan quality with the full rule set
//!   vs individually disabled rules (pushdown, channels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rumor_core::logical::{JoinSpec, OpDef, SeqSpec};
use rumor_core::MultiOp;
use rumor_core::{
    ChannelTuple, CountingEmit, MopContext, MopKind, Optimizer, OptimizerConfig, PlanGraph,
};
use rumor_expr::{CmpOp, Expr, Predicate};
use rumor_ops::{instantiate, naive::NaiveMop};
use rumor_types::{PortId, Schema, Tuple};

/// Builds a merged m-op context over `defs` (all reading the same streams).
fn merged_ctx(defs: Vec<OpDef>, kind: MopKind) -> MopContext {
    let arity = defs[0].arity();
    let mut plan = PlanGraph::new();
    plan.add_source("S", Schema::ints(3), None).unwrap();
    let s = plan.source_by_name("S").unwrap().stream;
    let t = if arity == 2 {
        plan.add_source("T", Schema::ints(3), None).unwrap();
        Some(plan.source_by_name("T").unwrap().stream)
    } else {
        None
    };
    let nodes: Vec<_> = defs
        .into_iter()
        .map(|def| {
            let mut inputs = vec![s];
            if let Some(t) = t {
                inputs.push(t);
            }
            plan.add_op(def, inputs).unwrap().0
        })
        .collect();
    let merged = plan.merge_mops(&nodes, kind).unwrap();
    MopContext::build(&plan, merged).unwrap()
}

fn drive_unary(op: &mut dyn MultiOp, n: u64) -> usize {
    let mut sink = CountingEmit::default();
    for ts in 0..n {
        let t = Tuple::ints(ts, &[(ts % 64) as i64, (ts % 7) as i64, 0]);
        op.process(PortId::LEFT, &ChannelTuple::solo(t), &mut sink);
    }
    sink.calls
}

fn drive_binary(op: &mut dyn MultiOp, n: u64) -> usize {
    let mut sink = CountingEmit::default();
    for ts in 0..n {
        let port = PortId((ts % 2) as u8);
        let t = Tuple::ints(ts, &[(ts % 32) as i64, (ts % 5) as i64, 0]);
        op.process(port, &ChannelTuple::solo(t), &mut sink);
    }
    sink.calls
}

fn bench_predicate_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicate_index");
    group.sample_size(20);
    for &n_preds in &[16usize, 64, 256] {
        let defs: Vec<OpDef> = (0..n_preds)
            .map(|i| OpDef::Select(Predicate::attr_eq_const(0, i as i64)))
            .collect();
        group.bench_with_input(BenchmarkId::new("indexed", n_preds), &defs, |b, defs| {
            let ctx = merged_ctx(defs.clone(), MopKind::IndexedSelect);
            b.iter(|| {
                let mut op = instantiate(&ctx).unwrap();
                drive_unary(op.as_mut(), 2000)
            });
        });
        group.bench_with_input(BenchmarkId::new("scan", n_preds), &defs, |b, defs| {
            let ctx = merged_ctx(defs.clone(), MopKind::Naive);
            b.iter(|| {
                let mut op = NaiveMop::new(&ctx).unwrap();
                drive_unary(&mut op, 2000)
            });
        });
    }
    group.finish();
}

fn bench_ai_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ai_index");
    group.sample_size(10);
    let spec = SeqSpec {
        predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
        window: 2000,
    };
    let defs = vec![OpDef::Sequence(spec)];
    group.bench_function("indexed", |b| {
        let ctx = merged_ctx(defs.clone(), MopKind::SharedSequence);
        b.iter(|| {
            let mut op = instantiate(&ctx).unwrap();
            drive_binary(op.as_mut(), 4000)
        });
    });
    group.bench_function("scan", |b| {
        let ctx = merged_ctx(defs.clone(), MopKind::Naive);
        b.iter(|| {
            // The reference executor scans all stored instances per event.
            let mut op = NaiveMop::new(&ctx).unwrap();
            drive_binary(&mut op, 4000)
        });
    });
    group.finish();
}

fn bench_shared_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_join");
    group.sample_size(10);
    for &n_queries in &[4usize, 16] {
        let defs: Vec<OpDef> = (0..n_queries)
            .map(|i| {
                OpDef::Join(JoinSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    window: 50 + 50 * i as u64,
                })
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("shared", n_queries), &defs, |b, defs| {
            let ctx = merged_ctx(defs.clone(), MopKind::SharedJoin);
            b.iter(|| {
                let mut op = instantiate(&ctx).unwrap();
                drive_binary(op.as_mut(), 2000)
            });
        });
        group.bench_with_input(
            BenchmarkId::new("independent", n_queries),
            &defs,
            |b, defs| {
                let ctx = merged_ctx(defs.clone(), MopKind::Naive);
                b.iter(|| {
                    let mut op = NaiveMop::new(&ctx).unwrap();
                    drive_binary(&mut op, 2000)
                });
            },
        );
    }
    group.finish();
}

fn bench_channel_overhead(c: &mut Criterion) {
    // The same selection evaluated through the channelized implementation
    // (capacity-1 membership bookkeeping) vs the plain indexed one.
    let mut group = c.benchmark_group("channel_overhead");
    group.sample_size(20);
    let defs = vec![OpDef::Select(Predicate::attr_eq_const(0, 1i64))];
    group.bench_function("plain_stream", |b| {
        let ctx = merged_ctx(defs.clone(), MopKind::IndexedSelect);
        b.iter(|| {
            let mut op = instantiate(&ctx).unwrap();
            drive_unary(op.as_mut(), 4000)
        });
    });
    group.bench_function("capacity1_channel", |b| {
        let ctx = merged_ctx(defs.clone(), MopKind::ChannelSelect);
        b.iter(|| {
            let mut op = instantiate(&ctx).unwrap();
            drive_unary(op.as_mut(), 4000)
        });
    });
    group.finish();
}

fn w1_style_plan() -> PlanGraph {
    let mut plan = PlanGraph::new();
    plan.add_source("S", Schema::ints(3), None).unwrap();
    plan.add_source("T", Schema::ints(3), None).unwrap();
    for i in 0..64i64 {
        plan.add_query(
            &rumor_core::LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, i % 16))
                .followed_by(
                    rumor_core::LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(CmpOp::Eq, Expr::rcol(0), Expr::lit(i % 8)),
                        window: 100,
                    },
                ),
        )
        .unwrap();
    }
    plan
}

fn bench_rule_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_order");
    group.sample_size(20);
    let configs: Vec<(&str, OptimizerConfig)> = vec![
        ("full", OptimizerConfig::default()),
        (
            "no_pushdown",
            OptimizerConfig::default().disable("seq_pushdown"),
        ),
        ("no_channels", OptimizerConfig::without_channels()),
        ("unoptimized", OptimizerConfig::unoptimized()),
    ];
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut plan = w1_style_plan();
                Optimizer::new(config.clone()).optimize(&mut plan).unwrap();
                (plan.mop_count(), plan.member_count())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_predicate_index,
    bench_ai_index,
    bench_shared_join,
    bench_channel_overhead,
    bench_rule_order
);
criterion_main!(benches);
