//! Micro-benchmarks of the core data-plane primitives: the membership bit
//! vector (the channel tuple's per-tuple overhead, §3.2), predicate
//! evaluation, and tuple fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rumor_expr::{CmpOp, EvalCtx, Expr, Predicate};
use rumor_types::{Membership, Tuple};

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership");
    for &n in &[10usize, 25, 200] {
        let a = Membership::from_indices((0..n).filter(|i| i % 2 == 0));
        let b = Membership::from_indices((0..n).filter(|i| i % 3 == 0));
        group.bench_with_input(
            BenchmarkId::new("intersect", n),
            &(a, b),
            |bench, (a, b)| {
                bench.iter(|| a.intersect(b));
            },
        );
        let a = Membership::from_indices((0..n).filter(|i| i % 2 == 0));
        let b = Membership::from_indices((0..n).filter(|i| i % 3 == 0));
        group.bench_with_input(BenchmarkId::new("union", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| a.union(b));
        });
        let m = Membership::all(n);
        group.bench_with_input(BenchmarkId::new("iter", n), &m, |bench, m| {
            bench.iter(|| m.iter().sum::<usize>());
        });
    }
    group.finish();
}

fn bench_predicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicate_eval");
    let tuple = Tuple::ints(0, &[3, 14, 15, 92, 65, 35, 89, 79, 32, 38]);
    let eq = Predicate::attr_eq_const(0, 3i64);
    group.bench_function("eq_const", |b| {
        b.iter(|| eq.eval(&EvalCtx::unary(&tuple)));
    });
    let conj = Predicate::and(vec![
        Predicate::attr_eq_const(0, 3i64),
        Predicate::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(10i64)),
        Predicate::cmp(CmpOp::Lt, Expr::col(2), Expr::lit(100i64)),
    ]);
    group.bench_function("conjunction3", |b| {
        b.iter(|| conj.eval(&EvalCtx::unary(&tuple)));
    });
    let arith = Predicate::cmp(
        CmpOp::Gt,
        Expr::col(1).mul(Expr::lit(3i64)).add(Expr::col(2)),
        Expr::lit(40i64),
    );
    group.bench_function("arithmetic", |b| {
        b.iter(|| arith.eval(&EvalCtx::unary(&tuple)));
    });
    group.finish();
}

fn bench_tuple_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuple");
    let wide = Tuple::ints(0, &[0; 10]);
    group.bench_function("clone_is_refcount", |b| {
        b.iter(|| wide.clone());
    });
    let l = Tuple::ints(0, &[1; 10]);
    let r = Tuple::ints(1, &[2; 10]);
    group.bench_function("concat", |b| {
        b.iter(|| l.concat(&r));
    });
    group.finish();
}

criterion_group!(benches, bench_membership, bench_predicates, bench_tuple_ops);
criterion_main!(benches);
