//! Property-based I/O-equivalence tests.
//!
//! §2.2 of the paper defines m-op semantics as the one-by-one execution of
//! the member operators and requires every optimized implementation to
//! "guarantee the same input-output behavior". These tests enforce exactly
//! that: for random member sets and random input streams, each shared
//! implementation must produce the same per-member output multiset as
//! [`rumor_ops::naive::NaiveMop`] over the same members.

use std::collections::HashMap;

use proptest::prelude::*;

use rumor_core::logical::{AggFunc, AggSpec, IterSpec, JoinSpec, OpDef, SeqSpec};
use rumor_core::{ChannelTuple, MopContext, MopKind, MultiOp, PlanGraph, VecEmit};
use rumor_expr::{CmpOp, Expr, NamedExpr, Predicate, SchemaMap};
use rumor_ops::{instantiate, naive::NaiveMop};
use rumor_types::{Membership, PortId, Schema, StreamId, Tuple};

/// An input event for the m-op under test.
#[derive(Debug, Clone)]
struct Event {
    port: usize,
    tuple: Tuple,
    /// Membership over the port-0 channel (ignored in solo mode).
    membership: Vec<usize>,
}

/// Builds a plan containing the given member defs merged into one m-op of
/// `kind`, with the port-0 inputs optionally channel-encoded over `n_left`
/// sharable streams. Returns the context of the merged node.
fn build_ctx(defs: &[OpDef], kind: MopKind, channel_left: bool) -> MopContext {
    let arity = defs[0].arity();
    let mut p = PlanGraph::new();
    p.add_source("S", Schema::ints(3), None).unwrap();
    let s = p.source_by_name("S").unwrap().stream;
    let t = if arity == 2 {
        p.add_source("T", Schema::ints(3), None).unwrap();
        Some(p.source_by_name("T").unwrap().stream)
    } else {
        None
    };

    let left_streams: Vec<StreamId> = if channel_left {
        // n_left sharable streams = outputs of one merged selection m-op.
        let mut ups = Vec::new();
        let mut outs = Vec::new();
        for i in 0..defs.len() {
            let (id, o) = p
                .add_op(
                    OpDef::Select(Predicate::attr_eq_const(2, i as i64)),
                    vec![s],
                )
                .unwrap();
            ups.push(id);
            outs.push(o);
        }
        p.merge_mops(&ups, MopKind::IndexedSelect).unwrap();
        outs
    } else {
        vec![s; defs.len()]
    };

    let nodes: Vec<_> = defs
        .iter()
        .enumerate()
        .map(|(i, def)| {
            let mut inputs = vec![left_streams[i]];
            if let Some(t) = t {
                inputs.push(t);
            }
            p.add_op(def.clone(), inputs).unwrap().0
        })
        .collect();
    if channel_left {
        p.encode_channel(&left_streams).unwrap();
    }
    let merged = p.merge_mops(&nodes, kind).unwrap();
    if channel_left {
        let outs: Vec<_> = p.mop(merged).output_streams().collect();
        if outs.len() >= 2 {
            p.encode_channel(&outs).unwrap();
        }
    }
    p.validate().unwrap();
    MopContext::build(&p, merged).unwrap()
}

/// Runs an implementation over the events and collects, per member, the
/// sorted multiset of output tuples.
fn run(
    op: &mut dyn MultiOp,
    ctx: &MopContext,
    events: &[Event],
    channel_left: bool,
) -> Vec<Vec<String>> {
    let mut sink = VecEmit::default();
    for ev in events {
        let membership = if ev.port == 0 && channel_left {
            Membership::from_indices(ev.membership.iter().copied())
        } else {
            Membership::singleton(0)
        };
        let ct = ChannelTuple::new(ev.tuple.clone(), membership);
        op.process(PortId(ev.port as u8), &ct, &mut sink);
    }
    // Attribute each emission to members via (channel, position).
    let mut by_target: HashMap<(rumor_types::ChannelId, usize), Vec<String>> = HashMap::new();
    for (ch, tuple, membership) in &sink.out {
        for pos in membership.iter() {
            by_target
                .entry((*ch, pos))
                .or_default()
                .push(format!("{tuple}"));
        }
    }
    let mut per_member = Vec::with_capacity(ctx.members.len());
    for m in &ctx.members {
        let mut v = by_target
            .remove(&(m.out_channel, m.out_position))
            .unwrap_or_default();
        v.sort();
        per_member.push(v);
    }
    per_member
}

/// Asserts shared ≡ naive over the same members and inputs.
fn assert_equivalent(defs: Vec<OpDef>, kind: MopKind, channel_left: bool, events: Vec<Event>) {
    let shared_ctx = build_ctx(&defs, kind, channel_left);
    let naive_ctx = build_ctx(&defs, MopKind::Naive, channel_left);
    // Plan-level CSE may have deduplicated identical members; the shared and
    // naive plans deduplicate identically, so member lists still align.
    assert_eq!(shared_ctx.members.len(), naive_ctx.members.len());
    let mut shared = instantiate(&shared_ctx).unwrap();
    let mut naive = NaiveMop::new(&naive_ctx).unwrap();
    let got = run(shared.as_mut(), &shared_ctx, &events, channel_left);
    let want = run(&mut naive, &naive_ctx, &events, channel_left);
    assert_eq!(
        got, want,
        "shared {kind:?} diverges from reference for members {defs:?}"
    );
}

// ----------------------------------------------------------------------
// Strategies
// ----------------------------------------------------------------------

/// Timestamp-ordered events with small attribute domains (to force
/// collisions) on the given ports.
fn events(n_ports: usize, len: usize, n_left: usize) -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (
            0..n_ports,
            prop::collection::vec(0i64..5, 3),
            1u64..4,
            prop::collection::vec(0usize..n_left.max(1), 1..=n_left.max(1)),
        ),
        1..len,
    )
    .prop_map(|items| {
        let mut ts = 0u64;
        items
            .into_iter()
            .map(|(port, vals, dt, membership)| {
                ts += dt;
                Event {
                    port,
                    tuple: Tuple::ints(ts, &vals),
                    membership,
                }
            })
            .collect()
    })
}

fn eq_pred() -> impl Strategy<Value = Predicate> {
    (0usize..3, 0i64..5).prop_map(|(a, c)| Predicate::attr_eq_const(a, c))
}

fn any_pred() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        eq_pred(),
        (0usize..3, 0i64..5).prop_map(|(a, c)| Predicate::cmp(
            CmpOp::Lt,
            Expr::col(a),
            Expr::lit(c)
        )),
        (0usize..3, 0i64..5, 0i64..5).prop_map(|(a, c, d)| Predicate::and(vec![
            Predicate::attr_eq_const(a, c),
            Predicate::cmp(CmpOp::Gt, Expr::col((a + 1) % 3), Expr::lit(d)),
        ])),
        Just(Predicate::True),
    ]
}

fn agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

fn group_by() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![Just(vec![]), Just(vec![0]), Just(vec![1]), Just(vec![0, 1]),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_select_equals_naive(
        preds in prop::collection::vec(any_pred(), 1..8),
        evs in events(1, 40, 1),
    ) {
        let defs: Vec<OpDef> = preds.into_iter().map(OpDef::Select).collect();
        assert_equivalent(defs, MopKind::IndexedSelect, false, evs);
    }

    #[test]
    fn channel_select_equals_naive(
        pred in any_pred(),
        n in 2usize..6,
        evs in events(1, 30, 5),
    ) {
        let defs: Vec<OpDef> = (0..n).map(|_| OpDef::Select(pred.clone())).collect();
        assert_equivalent(defs, MopKind::ChannelSelect, true, evs);
    }

    #[test]
    fn shared_project_equals_naive(
        muls in prop::collection::vec(1i64..4, 1..5),
        evs in events(1, 30, 1),
    ) {
        let defs: Vec<OpDef> = muls
            .into_iter()
            .map(|k| {
                OpDef::Project(SchemaMap::new(vec![NamedExpr::new(
                    "x",
                    Expr::col(0).mul(Expr::lit(k)),
                )]))
            })
            .collect();
        assert_equivalent(defs, MopKind::SharedProject, false, evs);
    }

    #[test]
    fn channel_project_equals_naive(
        k in 1i64..4,
        n in 2usize..6,
        evs in events(1, 30, 5),
    ) {
        let map = SchemaMap::new(vec![NamedExpr::new("x", Expr::col(0).mul(Expr::lit(k)))]);
        let defs: Vec<OpDef> = (0..n).map(|_| OpDef::Project(map.clone())).collect();
        assert_equivalent(defs, MopKind::ChannelProject, true, evs);
    }

    #[test]
    fn shared_aggregate_equals_naive(
        func in agg_func(),
        groups in prop::collection::vec(group_by(), 1..5),
        window in 1u64..20,
        evs in events(1, 40, 1),
    ) {
        let defs: Vec<OpDef> = groups
            .into_iter()
            .map(|g| OpDef::Aggregate(AggSpec {
                func,
                input: Expr::col(2),
                group_by: g,
                window,
            }))
            .collect();
        assert_equivalent(defs, MopKind::SharedAggregate, false, evs);
    }

    #[test]
    fn fragment_aggregate_equals_naive(
        func in agg_func(),
        g in group_by(),
        window in 1u64..20,
        n in 2usize..5,
        evs in events(1, 35, 4),
    ) {
        let spec = AggSpec { func, input: Expr::col(2), group_by: g, window };
        let defs: Vec<OpDef> = (0..n).map(|_| OpDef::Aggregate(spec.clone())).collect();
        assert_equivalent(defs, MopKind::FragmentAggregate, true, evs);
    }

    #[test]
    fn shared_join_equals_naive(
        windows in prop::collection::vec(1u64..15, 1..5),
        residual_const in 0i64..5,
        evs in events(2, 40, 1),
    ) {
        let pred = Predicate::and(vec![
            Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            Predicate::cmp(CmpOp::Lt, Expr::rcol(1), Expr::lit(residual_const)),
        ]);
        let defs: Vec<OpDef> = windows
            .into_iter()
            .map(|w| OpDef::Join(JoinSpec { predicate: pred.clone(), window: w }))
            .collect();
        assert_equivalent(defs, MopKind::SharedJoin, false, evs);
    }

    #[test]
    fn precision_join_equals_naive(
        window in 1u64..15,
        n in 2usize..5,
        evs in events(2, 35, 4),
    ) {
        let pred = Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0));
        let defs: Vec<OpDef> = (0..n)
            .map(|_| OpDef::Join(JoinSpec { predicate: pred.clone(), window }))
            .collect();
        assert_equivalent(defs, MopKind::PrecisionJoin, true, evs);
    }

    #[test]
    fn shared_sequence_equals_naive(
        windows in prop::collection::vec(1u64..15, 1..5),
        keyed in any::<bool>(),
        evs in events(2, 40, 1),
    ) {
        let pred = if keyed {
            Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0))
        } else {
            Predicate::cmp(CmpOp::Le, Expr::col(0), Expr::rcol(0))
        };
        let defs: Vec<OpDef> = windows
            .into_iter()
            .map(|w| OpDef::Sequence(SeqSpec { predicate: pred.clone(), window: w }))
            .collect();
        assert_equivalent(defs, MopKind::SharedSequence, false, evs);
    }

    #[test]
    fn channel_sequence_equals_naive(
        window in 1u64..15,
        n in 2usize..5,
        evs in events(2, 35, 4),
    ) {
        let pred = Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0));
        let defs: Vec<OpDef> = (0..n)
            .map(|_| OpDef::Sequence(SeqSpec { predicate: pred.clone(), window }))
            .collect();
        assert_equivalent(defs, MopKind::ChannelSequence, true, evs);
    }

    /// The c; generalization: members share the predicate but carry
    /// *different* duration windows (Workload 3's Zipf windows); emission
    /// is membership ∩ window-eligible members via the prefix-mask path.
    #[test]
    fn channel_sequence_with_mixed_windows_equals_naive(
        windows in prop::collection::vec(1u64..15, 2..5),
        evs in events(2, 35, 4),
    ) {
        let pred = Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0));
        let defs: Vec<OpDef> = windows
            .into_iter()
            .map(|w| OpDef::Sequence(SeqSpec { predicate: pred.clone(), window: w }))
            .collect();
        assert_equivalent(defs, MopKind::ChannelSequence, true, evs);
    }

    #[test]
    fn shared_iterate_equals_naive(
        windows in prop::collection::vec(1u64..15, 1..4),
        filter_kind in 0u8..3,
        evs in events(2, 35, 1),
    ) {
        let filter = match filter_kind {
            0 => Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
            1 => Predicate::True,
            _ => Predicate::cmp(CmpOp::Lt, Expr::rcol(1), Expr::lit(3i64)), // scan mode
        };
        let rebind = Predicate::and(vec![
            Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
        ]);
        let map = SchemaMap::new(vec![
            NamedExpr::new("a0", Expr::col(0)),
            NamedExpr::new("a1", Expr::rcol(1)),
            NamedExpr::new("a2", Expr::col(2)),
        ]);
        let defs: Vec<OpDef> = windows
            .into_iter()
            .map(|w| OpDef::Iterate(IterSpec {
                filter: filter.clone(),
                rebind: rebind.clone(),
                rebind_map: map.clone(),
                window: w,
            }))
            .collect();
        assert_equivalent(defs, MopKind::SharedIterate, false, evs);
    }

    #[test]
    fn channel_iterate_equals_naive(
        window in 1u64..15,
        n in 2usize..5,
        evs in events(2, 30, 4),
    ) {
        let spec = IterSpec {
            filter: Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
            rebind: Predicate::and(vec![
                Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
            ]),
            rebind_map: SchemaMap::new(vec![
                NamedExpr::new("a0", Expr::col(0)),
                NamedExpr::new("a1", Expr::rcol(1)),
                NamedExpr::new("a2", Expr::col(2)),
            ]),
            window,
        };
        let defs: Vec<OpDef> = (0..n).map(|_| OpDef::Iterate(spec.clone())).collect();
        assert_equivalent(defs, MopKind::ChannelIterate, true, evs);
    }

    /// cµ with per-member windows (same rebind evolution, emissions
    /// filtered by window coverage).
    #[test]
    fn channel_iterate_with_mixed_windows_equals_naive(
        windows in prop::collection::vec(1u64..15, 2..5),
        evs in events(2, 30, 4),
    ) {
        let defs: Vec<OpDef> = windows
            .into_iter()
            .map(|w| OpDef::Iterate(IterSpec {
                filter: Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
                rebind: Predicate::and(vec![
                    Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
                ]),
                rebind_map: SchemaMap::new(vec![
                    NamedExpr::new("a0", Expr::col(0)),
                    NamedExpr::new("a1", Expr::rcol(1)),
                    NamedExpr::new("a2", Expr::col(2)),
                ]),
                window: w,
            }))
            .collect();
        assert_equivalent(defs, MopKind::ChannelIterate, true, evs);
    }
}
