//! Shared projection m-ops.
//!
//! * [`SharedProject`] — rule sπ: projections reading the same stream.
//!   Each *distinct* schema map is evaluated once per tuple and fanned out
//!   to every member using it.
//! * [`ChannelProject`] — rule cπ: the §3.1 example — n projections with the
//!   same specification reading n sharable streams encoded by one channel.
//!   The map runs once and the output keeps the input membership intact.

use rumor_core::{ChannelTuple, Emit, MopContext, MultiOp};
use rumor_expr::SchemaMap;
use rumor_types::{PortId, Result, RumorError};

use crate::emitgroup::OutputGroups;

fn extract_project(ctx: &MopContext) -> Result<Vec<SchemaMap>> {
    ctx.members
        .iter()
        .map(|m| match &m.def {
            rumor_core::OpDef::Project(map) => Ok(map.clone()),
            other => Err(RumorError::exec(format!(
                "projection m-op given non-project member {other}"
            ))),
        })
        .collect()
}

fn def_groups(maps: &[SchemaMap]) -> Vec<(SchemaMap, Vec<usize>)> {
    let mut groups: Vec<(SchemaMap, Vec<usize>)> = Vec::new();
    for (i, m) in maps.iter().enumerate() {
        match groups.iter_mut().find(|(g, _)| g == m) {
            Some((_, members)) => members.push(i),
            None => groups.push((m.clone(), vec![i])),
        }
    }
    groups
}

/// Shared projection over one stream (rule sπ).
pub struct SharedProject {
    groups: Vec<(SchemaMap, Vec<usize>)>,
    in_position: usize,
    outputs: OutputGroups,
}

impl SharedProject {
    /// Builds the shared projection.
    pub fn new(ctx: &MopContext) -> Result<Self> {
        let maps = extract_project(ctx)?;
        let in_position = ctx
            .members
            .first()
            .map(|m| m.input_positions[0])
            .unwrap_or(0);
        if ctx
            .members
            .iter()
            .any(|m| m.input_positions[0] != in_position)
        {
            return Err(RumorError::exec(
                "sπ members must read the same stream".to_string(),
            ));
        }
        Ok(SharedProject {
            groups: def_groups(&maps),
            in_position,
            outputs: OutputGroups::new(&ctx.members),
        })
    }

    /// Number of distinct projection definitions.
    pub fn distinct_defs(&self) -> usize {
        self.groups.len()
    }
}

impl MultiOp for SharedProject {
    fn process(&mut self, _port: PortId, input: &ChannelTuple, out: &mut dyn Emit) {
        if !input.belongs_to(self.in_position) {
            return;
        }
        for gi in 0..self.groups.len() {
            let mapped = self.groups[gi].0.apply_unary(&input.tuple);
            let members = std::mem::take(&mut self.groups[gi].1);
            self.outputs.emit_members(out, &mapped, &members);
            self.groups[gi].1 = members;
        }
    }

    fn process_batch(&mut self, _port: PortId, inputs: &[ChannelTuple], out: &mut dyn Emit) {
        // Iterate definition-major: the whole group list is taken once per
        // run (no per-tuple — or per-group — cloning), and each schema
        // map's evaluation loop runs over the full run.
        let groups = std::mem::take(&mut self.groups);
        for (map, members) in &groups {
            for input in inputs {
                if !input.belongs_to(self.in_position) {
                    continue;
                }
                let mapped = map.apply_unary(&input.tuple);
                self.outputs.emit_members(out, &mapped, members);
            }
        }
        self.groups = groups;
    }

    fn is_stateless(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "shared-project"
    }
}

/// Channelized shared projection (rule cπ).
pub struct ChannelProject {
    groups: Vec<(SchemaMap, Vec<usize>)>,
    in_positions: Vec<usize>,
    /// Union of all member input positions (batch fast-path decode mask).
    member_mask: rumor_types::Membership,
    /// Member `m` reads position `m` and writes position `m` of one shared
    /// output channel — the strict cπ shape (see [`ChannelSelect`]'s
    /// equivalent flag in `select.rs`).
    identity_mapped: bool,
    outputs: OutputGroups,
    satisfied: Vec<usize>,
}

impl ChannelProject {
    /// Builds the channelized projection.
    pub fn new(ctx: &MopContext) -> Result<Self> {
        let maps = extract_project(ctx)?;
        let in_positions: Vec<usize> = ctx.members.iter().map(|m| m.input_positions[0]).collect();
        let member_mask = rumor_types::Membership::from_indices(in_positions.iter().copied());
        let outputs = OutputGroups::new(&ctx.members);
        let identity_mapped = outputs.uniform_channel().is_some()
            && in_positions
                .iter()
                .enumerate()
                .all(|(m, &pos)| pos == m && outputs.position_of(m) == m);
        Ok(ChannelProject {
            groups: def_groups(&maps),
            in_positions,
            member_mask,
            identity_mapped,
            outputs,
            satisfied: Vec::new(),
        })
    }

    #[inline]
    fn process_one(&mut self, input: &ChannelTuple, out: &mut dyn Emit) {
        for gi in 0..self.groups.len() {
            self.satisfied.clear();
            for &m in &self.groups[gi].1 {
                if input.belongs_to(self.in_positions[m]) {
                    self.satisfied.push(m);
                }
            }
            if self.satisfied.is_empty() {
                continue;
            }
            // Perform the projection only once per definition (§3.1), and
            // emit a single channel tuple with the membership intact.
            let mapped = self.groups[gi].0.apply_unary(&input.tuple);
            let satisfied = std::mem::take(&mut self.satisfied);
            self.outputs.emit_members(out, &mapped, &satisfied);
            self.satisfied = satisfied;
        }
    }
}

impl MultiOp for ChannelProject {
    fn process(&mut self, _port: PortId, input: &ChannelTuple, out: &mut dyn Emit) {
        self.process_one(input, out);
    }

    fn process_batch(&mut self, _port: PortId, inputs: &[ChannelTuple], out: &mut dyn Emit) {
        // The strict cπ case: one definition over identity-mapped members —
        // apply the map once per tuple and pass the membership through by
        // mask intersection, skipping the per-member decode loop.
        if self.groups.len() == 1 && self.identity_mapped {
            let map = &self.groups[0].0;
            for input in inputs {
                let membership = input.membership.intersect(&self.member_mask);
                if membership.is_empty() {
                    continue;
                }
                let mapped = map.apply_unary(&input.tuple);
                self.outputs.emit_premapped(out, mapped, membership);
            }
            return;
        }
        for input in inputs {
            self.process_one(input, out);
        }
    }

    fn is_stateless(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "channel-project"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::logical::OpDef;
    use rumor_core::{MopKind, PlanGraph, VecEmit};
    use rumor_expr::{Expr, NamedExpr, Predicate};
    use rumor_types::{Membership, Schema, Tuple};

    fn map_double() -> SchemaMap {
        SchemaMap::new(vec![NamedExpr::new("x", Expr::col(0).mul(Expr::lit(2i64)))])
    }

    fn map_triple() -> SchemaMap {
        SchemaMap::new(vec![NamedExpr::new("x", Expr::col(0).mul(Expr::lit(3i64)))])
    }

    #[test]
    fn shared_project_fans_out_distinct_maps() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(1), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let (a, _) = p.add_op(OpDef::Project(map_double()), vec![s]).unwrap();
        let (b, _) = p.add_op(OpDef::Project(map_triple()), vec![s]).unwrap();
        let merged = p.merge_mops(&[a, b], MopKind::SharedProject).unwrap();
        let ctx = MopContext::build(&p, merged).unwrap();
        let mut op = SharedProject::new(&ctx).unwrap();
        assert_eq!(op.distinct_defs(), 2);
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[10])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 2);
        assert_eq!(sink.out[0].1, Tuple::ints(0, &[20]));
        assert_eq!(sink.out[1].1, Tuple::ints(0, &[30]));
    }

    #[test]
    fn channel_project_single_output_tuple() {
        // The §3.1 example: identical projections over a channel emit one
        // tuple with the membership intact.
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(1), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let mut ups = Vec::new();
        let mut outs = Vec::new();
        for i in 0..3i64 {
            let (id, o) = p
                .add_op(OpDef::Select(Predicate::attr_eq_const(0, i)), vec![s])
                .unwrap();
            ups.push(id);
            outs.push(o);
        }
        p.merge_mops(&ups, MopKind::IndexedSelect).unwrap();
        let downs: Vec<_> = outs
            .iter()
            .map(|&o| p.add_op(OpDef::Project(map_double()), vec![o]).unwrap().0)
            .collect();
        p.encode_channel(&outs).unwrap();
        let merged = p.merge_mops(&downs, MopKind::ChannelProject).unwrap();
        let down_outs: Vec<_> = p.mop(merged).output_streams().collect();
        p.encode_channel(&down_outs).unwrap();
        let ctx = MopContext::build(&p, merged).unwrap();
        let mut op = ChannelProject::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(0, &[4]), Membership::from_indices([0, 2])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1, "one evaluation, one channel tuple");
        assert_eq!(sink.out[0].1, Tuple::ints(0, &[8]));
        assert_eq!(sink.out[0].2, Membership::from_indices([0, 2]));
        // Tuple belonging to no member stream: nothing.
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(1, &[4]), Membership::empty()),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1);
    }
}
