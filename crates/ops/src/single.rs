//! Single-operator executors: the textbook implementations of each physical
//! operator, used both as the members of [`crate::naive::NaiveMop`] (the
//! reference semantics of §2.2) and as building blocks elsewhere.
//!
//! Executors receive plain [`Tuple`]s (decoding is the caller's job) and
//! append plain output tuples to a caller-provided buffer (encoding is the
//! caller's job too).

use std::collections::{BTreeMap, HashMap, VecDeque};

use rumor_core::logical::{AggFunc, AggSpec, IterSpec, JoinSpec, OpDef, SeqSpec};
use rumor_expr::{EvalCtx, Predicate, SchemaMap};
use rumor_types::{OrdValue, Timestamp, Tuple, Value, ValueKey};

/// Concatenates two tuples with an explicit output timestamp.
pub fn concat_with_ts(left: &Tuple, right: &Tuple, ts: Timestamp) -> Tuple {
    let mut values = Vec::with_capacity(left.arity() + right.arity());
    values.extend_from_slice(left.values());
    values.extend_from_slice(right.values());
    Tuple::new(ts, values)
}

/// Extracts the group-by key of a tuple.
pub fn group_key(tuple: &Tuple, group_by: &[usize]) -> Vec<ValueKey> {
    group_by
        .iter()
        .map(|&i| tuple.value(i).cloned().unwrap_or(Value::Null).group_key())
        .collect()
}

/// A single-operator executor.
pub enum SingleOp {
    /// Selection.
    Select(SelectExec),
    /// Projection.
    Project(ProjectExec),
    /// Window aggregation.
    Aggregate(AggExec),
    /// Window join.
    Join(JoinExec),
    /// Cayuga sequence.
    Sequence(SeqExec),
    /// Cayuga iteration.
    Iterate(IterExec),
}

impl SingleOp {
    /// Builds the executor for an operator definition.
    pub fn new(def: &OpDef) -> SingleOp {
        match def {
            OpDef::Select(p) => SingleOp::Select(SelectExec::new(p.clone())),
            OpDef::Project(m) => SingleOp::Project(ProjectExec::new(m.clone())),
            OpDef::Aggregate(spec) => SingleOp::Aggregate(AggExec::new(spec.clone())),
            OpDef::Join(spec) => SingleOp::Join(JoinExec::new(spec.clone())),
            OpDef::Sequence(spec) => SingleOp::Sequence(SeqExec::new(spec.clone())),
            OpDef::Iterate(spec) => SingleOp::Iterate(IterExec::new(spec.clone())),
        }
    }

    /// Processes one input tuple on `port`, appending outputs to `out`.
    pub fn process(&mut self, port: usize, tuple: &Tuple, out: &mut Vec<Tuple>) {
        match self {
            SingleOp::Select(e) => e.process(tuple, out),
            SingleOp::Project(e) => e.process(tuple, out),
            SingleOp::Aggregate(e) => e.process(tuple, out),
            SingleOp::Join(e) => e.process(port, tuple, out),
            SingleOp::Sequence(e) => e.process(port, tuple, out),
            SingleOp::Iterate(e) => e.process(port, tuple, out),
        }
    }
}

// ----------------------------------------------------------------------
// Selection / projection
// ----------------------------------------------------------------------

/// σ: emits input tuples satisfying the predicate.
pub struct SelectExec {
    predicate: Predicate,
}

impl SelectExec {
    /// Creates the executor.
    pub fn new(predicate: Predicate) -> Self {
        SelectExec { predicate }
    }

    /// Processes one tuple.
    pub fn process(&mut self, tuple: &Tuple, out: &mut Vec<Tuple>) {
        if self.predicate.eval(&EvalCtx::unary(tuple)) {
            out.push(tuple.clone());
        }
    }
}

/// π: applies the schema map to every tuple.
pub struct ProjectExec {
    map: SchemaMap,
}

impl ProjectExec {
    /// Creates the executor.
    pub fn new(map: SchemaMap) -> Self {
        ProjectExec { map }
    }

    /// Processes one tuple.
    pub fn process(&mut self, tuple: &Tuple, out: &mut Vec<Tuple>) {
        out.push(self.map.apply_unary(tuple));
    }
}

// ----------------------------------------------------------------------
// Window aggregation
// ----------------------------------------------------------------------

/// Incrementally maintained aggregate state of one group.
#[derive(Debug, Clone)]
pub struct GroupState {
    /// Number of tuples in the group (COUNT, and AVG's denominator).
    pub count: usize,
    /// Number of non-null aggregated values.
    pub value_count: usize,
    /// Integer sum (valid while `all_int`).
    pub sum_int: i64,
    /// Float sum (always maintained for coerced results).
    pub sum_float: f64,
    /// Whether every non-null input so far was an integer.
    pub all_int: bool,
    /// Multiset of values for MIN/MAX under eviction.
    pub values: BTreeMap<OrdValue, usize>,
}

impl Default for GroupState {
    fn default() -> Self {
        GroupState::new()
    }
}

impl GroupState {
    /// Fresh, empty state.
    pub fn new() -> Self {
        GroupState {
            count: 0,
            value_count: 0,
            sum_int: 0,
            sum_float: 0.0,
            all_int: true,
            values: BTreeMap::new(),
        }
    }

    /// Adds a tuple's aggregated value.
    pub fn add(&mut self, v: &Value) {
        self.count += 1;
        match v {
            Value::Null => {}
            Value::Int(i) => {
                self.value_count += 1;
                self.sum_int = self.sum_int.wrapping_add(*i);
                self.sum_float += *i as f64;
                *self.values.entry(OrdValue(v.clone())).or_insert(0) += 1;
            }
            other => {
                self.value_count += 1;
                self.all_int = false;
                if let Some(f) = other.as_float() {
                    self.sum_float += f;
                }
                *self.values.entry(OrdValue(other.clone())).or_insert(0) += 1;
            }
        }
    }

    /// Removes a previously added value (window eviction).
    pub fn remove(&mut self, v: &Value) {
        self.count -= 1;
        if !v.is_null() {
            self.value_count -= 1;
            if let Value::Int(i) = v {
                self.sum_int = self.sum_int.wrapping_sub(*i);
            }
            if let Some(f) = v.as_float() {
                self.sum_float -= f;
            }
            if let Some(n) = self.values.get_mut(&OrdValue(v.clone())) {
                *n -= 1;
                if *n == 0 {
                    self.values.remove(&OrdValue(v.clone()));
                }
            }
        }
    }

    /// True when no tuples remain.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The current aggregate value.
    pub fn result(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.value_count == 0 {
                    Value::Null
                } else if self.all_int {
                    Value::Int(self.sum_int)
                } else {
                    Value::Float(self.sum_float)
                }
            }
            AggFunc::Avg => {
                if self.value_count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum_float / self.value_count as f64)
                }
            }
            AggFunc::Min => self
                .values
                .keys()
                .next()
                .map(|k| k.0.clone())
                .unwrap_or(Value::Null),
            AggFunc::Max => self
                .values
                .keys()
                .next_back()
                .map(|k| k.0.clone())
                .unwrap_or(Value::Null),
        }
    }

    /// Merges another state into this one (fragment combination, \[15\]).
    /// Only sound for states over disjoint tuple sets.
    pub fn merge_from(&mut self, other: &GroupState) {
        self.count += other.count;
        self.value_count += other.value_count;
        self.sum_int = self.sum_int.wrapping_add(other.sum_int);
        self.sum_float += other.sum_float;
        self.all_int &= other.all_int;
        for (k, n) in &other.values {
            *self.values.entry(k.clone()).or_insert(0) += n;
        }
    }
}

/// α: time-based sliding-window aggregation with group-by. On each input
/// tuple, evicts expired tuples, folds the new one in, and emits the
/// refreshed aggregate of the tuple's group.
pub struct AggExec {
    spec: AggSpec,
    window: VecDeque<(Timestamp, Vec<ValueKey>, Value)>,
    groups: HashMap<Vec<ValueKey>, GroupState>,
}

impl AggExec {
    /// Creates the executor.
    pub fn new(spec: AggSpec) -> Self {
        AggExec {
            spec,
            window: VecDeque::new(),
            groups: HashMap::new(),
        }
    }

    fn evict(&mut self, now: Timestamp) {
        while let Some((ts, _, _)) = self.window.front() {
            if now.saturating_sub(self.spec.window) > *ts || self.spec.window == 0 {
                let (_, key, v) = self.window.pop_front().expect("checked front");
                let g = self.groups.get_mut(&key).expect("group for windowed tuple");
                g.remove(&v);
                if g.is_empty() {
                    self.groups.remove(&key);
                }
            } else {
                break;
            }
        }
    }

    /// Processes one tuple: emits the refreshed `(group attrs..., agg)` row.
    pub fn process(&mut self, tuple: &Tuple, out: &mut Vec<Tuple>) {
        self.evict(tuple.ts);
        let key = group_key(tuple, &self.spec.group_by);
        let v = self.spec.input.eval(&EvalCtx::unary(tuple));
        self.window.push_back((tuple.ts, key.clone(), v.clone()));
        let g = self.groups.entry(key).or_default();
        g.add(&v);
        let result = g.result(self.spec.func);
        let mut values = Vec::with_capacity(self.spec.group_by.len() + 1);
        for &i in &self.spec.group_by {
            values.push(tuple.value(i).cloned().unwrap_or(Value::Null));
        }
        values.push(result);
        out.push(Tuple::new(tuple.ts, values));
    }
}

// ----------------------------------------------------------------------
// Window join
// ----------------------------------------------------------------------

/// ⋈: sliding-window join. Two tuples join iff their timestamps differ by
/// at most the window and the predicate holds; output is the concatenation
/// stamped with the later timestamp. This reference executor scans state
/// linearly; the shared implementations use hash indexes.
pub struct JoinExec {
    spec: JoinSpec,
    left: VecDeque<Tuple>,
    right: VecDeque<Tuple>,
}

impl JoinExec {
    /// Creates the executor.
    pub fn new(spec: JoinSpec) -> Self {
        JoinExec {
            spec,
            left: VecDeque::new(),
            right: VecDeque::new(),
        }
    }

    /// Processes a tuple arriving on `port` (0 = left, 1 = right).
    pub fn process(&mut self, port: usize, tuple: &Tuple, out: &mut Vec<Tuple>) {
        let horizon = tuple.ts.saturating_sub(self.spec.window);
        while self.left.front().is_some_and(|t| t.ts < horizon) {
            self.left.pop_front();
        }
        while self.right.front().is_some_and(|t| t.ts < horizon) {
            self.right.pop_front();
        }
        if port == 0 {
            for r in &self.right {
                if self.spec.predicate.eval(&EvalCtx::binary(tuple, r)) {
                    out.push(concat_with_ts(tuple, r, tuple.ts));
                }
            }
            self.left.push_back(tuple.clone());
        } else {
            for l in &self.left {
                if self.spec.predicate.eval(&EvalCtx::binary(l, tuple)) {
                    out.push(concat_with_ts(l, tuple, tuple.ts));
                }
            }
            self.right.push_back(tuple.clone());
        }
    }
}

// ----------------------------------------------------------------------
// Cayuga sequence (;)
// ----------------------------------------------------------------------

/// `;`: every left tuple becomes an instance; a right event matches an
/// instance iff the instance is strictly older, within the duration window,
/// and the predicate holds on (instance, event). A match emits the
/// concatenation and deletes the instance (§5.2 deletion semantics).
pub struct SeqExec {
    spec: SeqSpec,
    instances: VecDeque<Tuple>,
}

impl SeqExec {
    /// Creates the executor.
    pub fn new(spec: SeqSpec) -> Self {
        SeqExec {
            spec,
            instances: VecDeque::new(),
        }
    }

    /// Processes a tuple arriving on `port` (0 = instance, 1 = event).
    pub fn process(&mut self, port: usize, tuple: &Tuple, out: &mut Vec<Tuple>) {
        if port == 0 {
            self.instances.push_back(tuple.clone());
            return;
        }
        let horizon = tuple.ts.saturating_sub(self.spec.window);
        while self.instances.front().is_some_and(|i| i.ts < horizon) {
            self.instances.pop_front();
        }
        let mut survivors = VecDeque::with_capacity(self.instances.len());
        for inst in self.instances.drain(..) {
            let matched =
                inst.ts < tuple.ts && self.spec.predicate.eval(&EvalCtx::binary(&inst, tuple));
            if matched {
                out.push(concat_with_ts(&inst, tuple, tuple.ts));
            } else {
                survivors.push_back(inst);
            }
        }
        self.instances = survivors;
    }
}

// ----------------------------------------------------------------------
// Cayuga iteration (µ)
// ----------------------------------------------------------------------

/// One µ instance: the pattern-in-progress plus its birth timestamp (the
/// duration window is anchored at the instance's first event).
#[derive(Debug, Clone)]
pub struct IterInstance {
    /// Timestamp of the left event that started the pattern.
    pub start_ts: Timestamp,
    /// Current instance tuple (schema = left input schema).
    pub tuple: Tuple,
}

/// `µ`: iterative sequence. Left tuples create instances; for each right
/// event and live, strictly older instance:
///
/// * filter predicate θf true  → the instance survives unchanged;
/// * rebind predicate θr true  → the rebind map produces the updated
///   instance, which is stored **and emitted**;
/// * both true                 → non-determinism: the instance duplicates
///   and traverses both edges (§4.2);
/// * neither                   → the instance is deleted.
pub struct IterExec {
    spec: IterSpec,
    instances: Vec<IterInstance>,
}

impl IterExec {
    /// Creates the executor.
    pub fn new(spec: IterSpec) -> Self {
        IterExec {
            spec,
            instances: Vec::new(),
        }
    }

    /// Processes a tuple arriving on `port` (0 = instance, 1 = event).
    pub fn process(&mut self, port: usize, tuple: &Tuple, out: &mut Vec<Tuple>) {
        if port == 0 {
            self.instances.push(IterInstance {
                start_ts: tuple.ts,
                tuple: tuple.clone(),
            });
            return;
        }
        let horizon = tuple.ts.saturating_sub(self.spec.window);
        let mut next = Vec::with_capacity(self.instances.len());
        for inst in self.instances.drain(..) {
            if inst.start_ts < horizon {
                continue; // duration window expired
            }
            if inst.start_ts >= tuple.ts {
                // Same-timestamp (or future) instances are untouched: an
                // event never iterates the instance it just created.
                next.push(inst);
                continue;
            }
            let ctx = EvalCtx::binary(&inst.tuple, tuple);
            let f = self.spec.filter.eval(&ctx);
            let r = self.spec.rebind.eval(&ctx);
            if f {
                next.push(inst.clone());
            }
            if r {
                let rebound = self.spec.rebind_map.apply_binary(&inst.tuple, tuple);
                out.push(rebound.clone());
                next.push(IterInstance {
                    start_ts: inst.start_ts,
                    tuple: rebound,
                });
            }
            // neither f nor r: dropped.
        }
        self.instances = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_expr::{CmpOp, Expr, NamedExpr};

    fn run_unary(op: &mut SingleOp, inputs: &[Tuple]) -> Vec<Tuple> {
        let mut out = Vec::new();
        for t in inputs {
            op.process(0, t, &mut out);
        }
        out
    }

    #[test]
    fn select_filters() {
        let mut op = SingleOp::new(&OpDef::Select(Predicate::attr_eq_const(0, 1i64)));
        let out = run_unary(
            &mut op,
            &[
                Tuple::ints(0, &[1]),
                Tuple::ints(1, &[2]),
                Tuple::ints(2, &[1]),
            ],
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts, 0);
        assert_eq!(out[1].ts, 2);
    }

    #[test]
    fn project_maps() {
        let map = SchemaMap::new(vec![NamedExpr::new("x", Expr::col(0).add(Expr::lit(1i64)))]);
        let mut op = SingleOp::new(&OpDef::Project(map));
        let out = run_unary(&mut op, &[Tuple::ints(5, &[10])]);
        assert_eq!(out[0], Tuple::ints(5, &[11]));
    }

    #[test]
    fn aggregate_sliding_sum() {
        let spec = AggSpec {
            func: AggFunc::Sum,
            input: Expr::col(1),
            group_by: vec![0],
            window: 2,
        };
        let mut op = SingleOp::new(&OpDef::Aggregate(spec));
        // Group 7: values 10 @0, 20 @1, 30 @3 (window 2 keeps ts in (t-2, t]).
        let out = run_unary(
            &mut op,
            &[
                Tuple::ints(0, &[7, 10]),
                Tuple::ints(1, &[7, 20]),
                Tuple::ints(3, &[7, 30]),
            ],
        );
        assert_eq!(out[0], Tuple::ints(0, &[7, 10]));
        assert_eq!(out[1], Tuple::ints(1, &[7, 30]));
        // At ts=3 the ts=0 tuple (10) has expired; 20 (ts=1) remains.
        assert_eq!(out[2], Tuple::ints(3, &[7, 50]));
    }

    #[test]
    fn aggregate_group_isolation() {
        let spec = AggSpec {
            func: AggFunc::Count,
            input: Expr::col(0),
            group_by: vec![0],
            window: 100,
        };
        let mut op = SingleOp::new(&OpDef::Aggregate(spec));
        let out = run_unary(
            &mut op,
            &[
                Tuple::ints(0, &[1]),
                Tuple::ints(1, &[2]),
                Tuple::ints(2, &[1]),
            ],
        );
        assert_eq!(out[0], Tuple::ints(0, &[1, 1]));
        assert_eq!(out[1], Tuple::ints(1, &[2, 1]));
        assert_eq!(out[2], Tuple::ints(2, &[1, 2]));
    }

    #[test]
    fn aggregate_min_max_under_eviction() {
        let spec = AggSpec {
            func: AggFunc::Max,
            input: Expr::col(0),
            group_by: vec![],
            window: 2,
        };
        let mut op = SingleOp::new(&OpDef::Aggregate(spec));
        let out = run_unary(
            &mut op,
            &[
                Tuple::ints(0, &[9]),
                Tuple::ints(1, &[5]),
                Tuple::ints(3, &[1]), // 9 expired; max of {5, 1} = 5
            ],
        );
        assert_eq!(out[2].value(0), Some(&Value::Int(5)));
    }

    #[test]
    fn avg_is_float() {
        let spec = AggSpec {
            func: AggFunc::Avg,
            input: Expr::col(0),
            group_by: vec![],
            window: 10,
        };
        let mut op = SingleOp::new(&OpDef::Aggregate(spec));
        let out = run_unary(&mut op, &[Tuple::ints(0, &[1]), Tuple::ints(1, &[2])]);
        assert_eq!(out[1].value(0), Some(&Value::Float(1.5)));
    }

    #[test]
    fn join_within_window() {
        let spec = JoinSpec {
            predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            window: 3,
        };
        let mut op = SingleOp::new(&OpDef::Join(spec));
        let mut out = Vec::new();
        op.process(0, &Tuple::ints(0, &[7, 1]), &mut out); // left
        op.process(1, &Tuple::ints(1, &[7, 2]), &mut out); // right: joins
        op.process(1, &Tuple::ints(2, &[8, 3]), &mut out); // right: key mismatch
        op.process(1, &Tuple::ints(9, &[7, 4]), &mut out); // right: window expired
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], Tuple::ints(1, &[7, 1, 7, 2]));
    }

    #[test]
    fn join_right_then_left() {
        let spec = JoinSpec {
            predicate: Predicate::True,
            window: 5,
        };
        let mut op = SingleOp::new(&OpDef::Join(spec));
        let mut out = Vec::new();
        op.process(1, &Tuple::ints(0, &[1]), &mut out);
        op.process(0, &Tuple::ints(2, &[2]), &mut out);
        assert_eq!(out.len(), 1);
        // Left values first regardless of arrival order.
        assert_eq!(out[0], Tuple::ints(2, &[2, 1]));
    }

    #[test]
    fn sequence_matches_and_deletes() {
        let spec = SeqSpec {
            predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            window: 10,
        };
        let mut op = SingleOp::new(&OpDef::Sequence(spec));
        let mut out = Vec::new();
        op.process(0, &Tuple::ints(0, &[7]), &mut out);
        op.process(1, &Tuple::ints(1, &[7]), &mut out); // matches, deletes
        op.process(1, &Tuple::ints(2, &[7]), &mut out); // instance gone
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], Tuple::ints(1, &[7, 7]));
    }

    #[test]
    fn sequence_window_expiry() {
        let spec = SeqSpec {
            predicate: Predicate::True,
            window: 3,
        };
        let mut op = SingleOp::new(&OpDef::Sequence(spec));
        let mut out = Vec::new();
        op.process(0, &Tuple::ints(0, &[1]), &mut out);
        op.process(1, &Tuple::ints(4, &[2]), &mut out); // 4 - 0 > 3: expired
        assert!(out.is_empty());
        op.process(0, &Tuple::ints(5, &[3]), &mut out);
        op.process(1, &Tuple::ints(8, &[4]), &mut out); // 8 - 5 <= 3: match
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sequence_requires_strictly_older_instance() {
        let spec = SeqSpec {
            predicate: Predicate::True,
            window: 10,
        };
        let mut op = SingleOp::new(&OpDef::Sequence(spec));
        let mut out = Vec::new();
        op.process(0, &Tuple::ints(5, &[1]), &mut out);
        op.process(1, &Tuple::ints(5, &[2]), &mut out); // same ts: no match
        assert!(out.is_empty());
    }

    fn monotone_iter_spec() -> IterSpec {
        // Instance schema: (key, last). Filter: other keys pass by.
        // Rebind: same key and strictly increasing value.
        IterSpec {
            filter: Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
            rebind: Predicate::and(vec![
                Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
            ]),
            rebind_map: SchemaMap::new(vec![
                NamedExpr::new("a0", Expr::col(0)),
                NamedExpr::new("a1", Expr::rcol(1)),
            ]),
            window: 100,
        }
    }

    #[test]
    fn iterate_builds_monotone_pattern() {
        let mut op = SingleOp::new(&OpDef::Iterate(monotone_iter_spec()));
        let mut out = Vec::new();
        op.process(0, &Tuple::ints(0, &[7, 10]), &mut out); // start at 10
        op.process(1, &Tuple::ints(1, &[7, 15]), &mut out); // rebind -> 15
        op.process(1, &Tuple::ints(2, &[8, 99]), &mut out); // other key: filter
        op.process(1, &Tuple::ints(3, &[7, 20]), &mut out); // rebind -> 20
        assert_eq!(
            out,
            vec![Tuple::ints(1, &[7, 15]), Tuple::ints(3, &[7, 20])]
        );
        // Non-increasing same-key event kills the instance.
        op.process(1, &Tuple::ints(4, &[7, 5]), &mut out);
        op.process(1, &Tuple::ints(5, &[7, 30]), &mut out);
        assert_eq!(out.len(), 2, "pattern died at ts=4");
    }

    #[test]
    fn iterate_duplicates_on_both_edges() {
        // filter=True and rebind=True: each event doubles the instances and
        // emits one rebound tuple per pre-existing instance.
        let spec = IterSpec {
            filter: Predicate::True,
            rebind: Predicate::True,
            rebind_map: SchemaMap::new(vec![NamedExpr::new("a0", Expr::rcol(0))]),
            window: 100,
        };
        let mut op = SingleOp::new(&OpDef::Iterate(spec));
        let mut out = Vec::new();
        op.process(0, &Tuple::ints(0, &[1]), &mut out);
        op.process(1, &Tuple::ints(1, &[2]), &mut out);
        assert_eq!(out.len(), 1);
        op.process(1, &Tuple::ints(2, &[3]), &mut out);
        assert_eq!(out.len(), 1 + 2, "two instances each rebind");
    }

    #[test]
    fn iterate_window_expiry() {
        let mut spec = monotone_iter_spec();
        spec.window = 2;
        let mut op = SingleOp::new(&OpDef::Iterate(spec));
        let mut out = Vec::new();
        op.process(0, &Tuple::ints(0, &[7, 10]), &mut out);
        op.process(1, &Tuple::ints(5, &[7, 20]), &mut out); // expired
        assert!(out.is_empty());
    }

    #[test]
    fn group_state_result_types() {
        let mut g = GroupState::new();
        g.add(&Value::Int(3));
        g.add(&Value::Int(4));
        assert_eq!(g.result(AggFunc::Sum), Value::Int(7));
        assert_eq!(g.result(AggFunc::Count), Value::Int(2));
        assert_eq!(g.result(AggFunc::Avg), Value::Float(3.5));
        assert_eq!(g.result(AggFunc::Min), Value::Int(3));
        assert_eq!(g.result(AggFunc::Max), Value::Int(4));
        g.add(&Value::Float(0.5));
        assert_eq!(g.result(AggFunc::Sum), Value::Float(7.5));
        assert_eq!(g.result(AggFunc::Min), Value::Float(0.5));
    }

    #[test]
    fn group_state_nulls_and_empty() {
        let mut g = GroupState::new();
        g.add(&Value::Null);
        assert_eq!(g.result(AggFunc::Count), Value::Int(1), "COUNT counts rows");
        assert_eq!(g.result(AggFunc::Sum), Value::Null);
        assert_eq!(g.result(AggFunc::Min), Value::Null);
        g.remove(&Value::Null);
        assert!(g.is_empty());
    }

    #[test]
    fn group_state_merge() {
        let mut a = GroupState::new();
        a.add(&Value::Int(1));
        let mut b = GroupState::new();
        b.add(&Value::Int(5));
        a.merge_from(&b);
        assert_eq!(a.result(AggFunc::Sum), Value::Int(6));
        assert_eq!(a.result(AggFunc::Max), Value::Int(5));
        assert_eq!(a.result(AggFunc::Count), Value::Int(2));
    }
}
