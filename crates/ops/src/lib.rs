//! # rumor-ops
//!
//! Physical m-op implementations for RUMOR.
//!
//! Every m-op kind selected by the rewrite rules (see
//! [`rumor_core::MopKind`]) has an implementation here:
//!
//! * [`naive::NaiveMop`] — the reference: one-by-one execution of the member
//!   operators, exactly the semantics definition of §2.2. Every shared
//!   implementation is property-tested for I/O equivalence against it.
//! * [`select`] — predicate-indexed selection (rule sσ, the FR/AN index
//!   equivalents of §4.3) and channelized selection (rule cσ).
//! * [`project`] — shared and channelized projection (the §3.1 example).
//! * [`aggregate`] — shared window aggregation (rule sα, \[22\]) and shared
//!   fragment aggregation over channels (rule cα, \[15\]).
//! * [`join`] — shared window joins across window lengths (rule s⋈, \[12\])
//!   and precision-sharing joins over channels (rule c⋈, \[14\]).
//! * [`sequence`] — the Cayuga `;` operator with the Active-Instance (AI)
//!   index, shared across queries (rule s;) and channels (rule c;, §4.4).
//! * [`iterate`] — the Cayuga `µ` operator, shared (sµ) and channelized
//!   (cµ, §4.4).
//!
//! [`instantiate`] turns a resolved [`MopContext`] into the matching
//! implementation.

#![warn(missing_docs)]

pub mod aggregate;
pub mod iterate;
pub mod join;
pub mod naive;
pub mod project;
pub mod select;
pub mod sequence;
pub mod single;

mod emitgroup;

pub use emitgroup::OutputGroups;

use rumor_core::{MopContext, MopKind, MultiOp, OpDef};
use rumor_types::Result;

/// Instantiates the physical implementation for a resolved m-op context.
///
/// Single-member `Naive` nodes holding stateful operators (`;`, `µ`, `⋈`,
/// `α`) are instantiated with the shared implementations (with one member):
/// those carry the hash indexes — the AI index in particular — that the
/// Cayuga engine applies per state regardless of how many queries exist, so
/// the single-query baseline stays comparable (§5.2, one-query data
/// points). Semantics are unchanged (the equivalence property tests cover
/// one-member groups).
pub fn instantiate(ctx: &MopContext) -> Result<Box<dyn MultiOp>> {
    if ctx.kind == MopKind::Naive && ctx.members.len() == 1 {
        match &ctx.members[0].def {
            OpDef::Sequence(_) => return Ok(Box::new(sequence::SharedSequence::new(ctx)?)),
            OpDef::Iterate(_) => return Ok(Box::new(iterate::SharedIterate::new(ctx)?)),
            OpDef::Join(_) => return Ok(Box::new(join::SharedJoin::new(ctx)?)),
            OpDef::Aggregate(_) => return Ok(Box::new(aggregate::SharedAggregate::new(ctx)?)),
            _ => {}
        }
    }
    Ok(match ctx.kind {
        MopKind::Naive => Box::new(naive::NaiveMop::new(ctx)?),
        MopKind::IndexedSelect => Box::new(select::IndexedSelect::new(ctx)?),
        MopKind::ChannelSelect => Box::new(select::ChannelSelect::new(ctx)?),
        MopKind::SharedProject => Box::new(project::SharedProject::new(ctx)?),
        MopKind::ChannelProject => Box::new(project::ChannelProject::new(ctx)?),
        MopKind::SharedAggregate => Box::new(aggregate::SharedAggregate::new(ctx)?),
        MopKind::FragmentAggregate => Box::new(aggregate::FragmentAggregate::new(ctx)?),
        MopKind::SharedJoin => Box::new(join::SharedJoin::new(ctx)?),
        MopKind::PrecisionJoin => Box::new(join::PrecisionJoin::new(ctx)?),
        MopKind::SharedSequence => Box::new(sequence::SharedSequence::new(ctx)?),
        MopKind::ChannelSequence => Box::new(sequence::SharedSequence::new_channel(ctx)?),
        MopKind::SharedIterate => Box::new(iterate::SharedIterate::new(ctx)?),
        MopKind::ChannelIterate => Box::new(iterate::SharedIterate::new_channel(ctx)?),
    })
}
