//! Output-channel grouping: the *encoding step* of §3.1, shared by all m-op
//! implementations.
//!
//! Each member operator owns one output stream, which lives at a fixed
//! position of some output channel. When several members of an m-op emit
//! the *same* payload tuple (selections that passed, identical projections,
//! pattern matches fanned out to many queries), the m-op should write one
//! channel tuple per output channel with the union membership, not one
//! tuple per member — that is where the channel space/time sharing comes
//! from.

use std::collections::HashMap;

use rumor_core::{Emit, MemberCtx};
use rumor_types::{ChannelId, Membership, Tuple};

/// Precomputed output routing for an m-op's members.
#[derive(Debug)]
pub struct OutputGroups {
    /// Per member: (output channel, position within it).
    per_member: Vec<(ChannelId, usize)>,
    /// True if every member's output channel has capacity 1 — the fast path
    /// where no membership grouping is ever needed.
    all_singleton: bool,
    /// All members share one output channel (the common case after a
    /// channel rule encoded the outputs): membership is built directly.
    uniform_channel: Option<ChannelId>,
    /// Scratch map reused across calls to avoid per-tuple allocation.
    scratch: HashMap<ChannelId, Membership>,
}

impl OutputGroups {
    /// Builds routing from member contexts.
    pub fn new(members: &[MemberCtx]) -> Self {
        let per_member = members
            .iter()
            .map(|m| (m.out_channel, m.out_position))
            .collect();
        let all_singleton = members.iter().all(|m| m.out_capacity == 1);
        let uniform_channel = match members.first() {
            Some(first) if members.iter().all(|m| m.out_channel == first.out_channel) => {
                Some(first.out_channel)
            }
            _ => None,
        };
        OutputGroups {
            per_member,
            all_singleton,
            uniform_channel,
            scratch: HashMap::new(),
        }
    }

    /// Number of members routed.
    pub fn len(&self) -> usize {
        self.per_member.len()
    }

    /// True when no members are routed.
    pub fn is_empty(&self) -> bool {
        self.per_member.is_empty()
    }

    /// Emits `tuple` on behalf of the listed members (the same payload for
    /// each), grouping members that share an output channel into a single
    /// channel tuple.
    pub fn emit_members(&mut self, out: &mut dyn Emit, tuple: &Tuple, members: &[usize]) {
        match members {
            [] => {}
            [m] => {
                let (ch, pos) = self.per_member[*m];
                out.emit(ch, tuple.clone(), Membership::singleton(pos));
            }
            _ if self.all_singleton => {
                for &m in members {
                    let (ch, pos) = self.per_member[m];
                    out.emit(ch, tuple.clone(), Membership::singleton(pos));
                }
            }
            _ if self.uniform_channel.is_some() => {
                let ch = self.uniform_channel.expect("checked");
                let membership =
                    Membership::from_indices(members.iter().map(|&m| self.per_member[m].1));
                out.emit(ch, tuple.clone(), membership);
            }
            _ => {
                for &m in members {
                    let (ch, pos) = self.per_member[m];
                    self.scratch.entry(ch).or_default().insert(pos);
                }
                for (ch, membership) in self.scratch.drain() {
                    out.emit(ch, tuple.clone(), membership);
                }
            }
        }
    }

    /// Emits `tuple` for a single member.
    pub fn emit_one(&self, out: &mut dyn Emit, tuple: Tuple, member: usize) {
        let (ch, pos) = self.per_member[member];
        out.emit(ch, tuple, Membership::singleton(pos));
    }

    /// The single output channel shared by all members, if any.
    pub fn uniform_channel(&self) -> Option<ChannelId> {
        self.uniform_channel
    }

    /// The out position of one member.
    pub fn position_of(&self, member: usize) -> usize {
        self.per_member[member].1
    }

    /// Emits an already-built output membership on the uniform channel.
    /// Callers must have constructed `membership` from member out
    /// positions; panics if there is no uniform channel.
    pub fn emit_premapped(&self, out: &mut dyn Emit, tuple: Tuple, membership: Membership) {
        let ch = self
            .uniform_channel
            .expect("premapped emission needs a uniform channel");
        out.emit(ch, tuple, membership);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::logical::OpDef;
    use rumor_core::{MopContext, MopKind, PlanGraph, VecEmit};
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    /// Two members with channel-encoded outputs and one with a singleton.
    fn groups() -> (OutputGroups, Vec<ChannelId>) {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(1), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let (a, oa) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (b, ob) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        let (c, _oc) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 3i64)), vec![s])
            .unwrap();
        let merged = p.merge_mops(&[a, b, c], MopKind::IndexedSelect).unwrap();
        p.encode_channel(&[oa, ob]).unwrap();
        let ctx = MopContext::build(&p, merged).unwrap();
        let channels = ctx.members.iter().map(|m| m.out_channel).collect();
        (OutputGroups::new(&ctx.members), channels)
    }

    #[test]
    fn groups_shared_channels() {
        let (mut og, channels) = groups();
        assert!(!og.is_empty());
        assert_eq!(og.len(), 3);
        let mut sink = VecEmit::default();
        let t = Tuple::ints(0, &[1]);
        og.emit_members(&mut sink, &t, &[0, 1, 2]);
        // Members 0 and 1 share a channel -> one tuple with membership {0,1};
        // member 2 gets its own.
        assert_eq!(sink.out.len(), 2);
        let grouped = sink
            .out
            .iter()
            .find(|(ch, _, _)| *ch == channels[0])
            .unwrap();
        assert_eq!(grouped.2, Membership::from_indices([0, 1]));
        let solo = sink
            .out
            .iter()
            .find(|(ch, _, _)| *ch == channels[2])
            .unwrap();
        assert_eq!(solo.2, Membership::singleton(0));
    }

    #[test]
    fn single_member_fast_path() {
        let (mut og, channels) = groups();
        let mut sink = VecEmit::default();
        og.emit_members(&mut sink, &Tuple::ints(0, &[1]), &[1]);
        assert_eq!(sink.out.len(), 1);
        assert_eq!(sink.out[0].0, channels[1]);
        assert_eq!(sink.out[0].2, Membership::singleton(1));
    }

    #[test]
    fn empty_member_list_emits_nothing() {
        let (mut og, _) = groups();
        let mut sink = VecEmit::default();
        og.emit_members(&mut sink, &Tuple::ints(0, &[1]), &[]);
        assert!(sink.out.is_empty());
    }
}
