//! The Cayuga iteration operator `µ` as a shared m-op.
//!
//! [`SharedIterate`] covers rules sµ (same definition over the same stream
//! pair, per-member duration windows) and cµ (§4.4: left inputs encoded by
//! a channel, instances carry memberships).
//!
//! Sharing argument: a µ instance's evolution (filter / rebind / delete /
//! duplicate) depends only on the instance value and the event — members of
//! an sµ m-op differ *only* in their duration window, so one shared
//! instance evolves identically for every member and emissions are simply
//! filtered by per-member window coverage. Members of a cµ m-op are fully
//! identical; the instance's membership says which queries it exists for.
//!
//! Two evaluation modes:
//!
//! * **keyed** — when the rebind predicate has equi-join conjuncts (e.g.
//!   `instance.pid = event.pid`) *and* the filter predicate provably passes
//!   every non-key event (it is `True`, or exactly the negated key
//!   equality), instances are hash-bucketed by key: an event only touches
//!   instances of its own key. This is the µ counterpart of the AI index.
//! * **scan** — the general fallback: every live instance evaluates both
//!   edge predicates per event.

use std::collections::HashMap;

use rumor_core::logical::IterSpec;
use rumor_core::{ChannelTuple, Emit, MopContext, MultiOp};
use rumor_expr::{CmpOp, EvalCtx, Expr, Predicate, Side};
use rumor_types::{Membership, PortId, Result, RumorError, Timestamp, Tuple, Value, ValueKey};

use crate::emitgroup::OutputGroups;

fn extract_iter(ctx: &MopContext) -> Result<Vec<IterSpec>> {
    ctx.members
        .iter()
        .map(|m| match &m.def {
            rumor_core::OpDef::Iterate(spec) => Ok(spec.clone()),
            other => Err(RumorError::exec(format!(
                "iterate m-op given non-iterate member {other}"
            ))),
        })
        .collect()
}

/// Whether the keyed mode is sound: the filter predicate must be guaranteed
/// true for every event whose key differs from the instance's key (so that
/// skipping non-key instances can never miss a deletion), and the rebind
/// predicate must be guaranteed false for them (its equi conjunct fails).
fn keyed_mode_sound(filter: &Predicate, keys: &[(usize, usize)]) -> bool {
    if keys.is_empty() {
        return false;
    }
    match filter {
        Predicate::True => true,
        Predicate::Cmp {
            op: CmpOp::Ne,
            lhs,
            rhs,
        } => {
            if keys.len() != 1 {
                return false;
            }
            let (l, r) = keys[0];
            matches!(
                (lhs, rhs),
                (
                    Expr::Col { side: Side::Left, index: li },
                    Expr::Col { side: Side::Right, index: ri },
                ) if *li == l && *ri == r
            ) || matches!(
                (lhs, rhs),
                (
                    Expr::Col { side: Side::Right, index: ri },
                    Expr::Col { side: Side::Left, index: li },
                ) if *li == l && *ri == r
            )
        }
        _ => false,
    }
}

#[derive(Debug, Clone)]
struct Instance {
    start_ts: Timestamp,
    tuple: Tuple,
    membership: Membership,
}

/// Shared `µ` m-op (rules sµ and cµ).
pub struct SharedIterate {
    spec: IterSpec,
    /// `(window, member)` sorted descending (sµ mode).
    members_by_window: Vec<(u64, usize)>,
    max_window: u64,
    channel_mode: bool,
    keyed: bool,
    keys: Vec<(usize, usize)>,
    left_positions: Vec<usize>,
    right_position: usize,
    /// Scan mode: all instances in insertion order.
    instances: Vec<Instance>,
    /// Keyed mode: instances bucketed by key.
    buckets: HashMap<Vec<ValueKey>, Vec<Instance>>,
    live: usize,
    outputs: OutputGroups,
    satisfied: Vec<usize>,
    /// Channel-mode fast path (see the sequence m-op): descending member
    /// windows, cumulative prefix out-masks, per-left-position out-masks.
    windows_desc: Vec<u64>,
    prefix_masks: Vec<Membership>,
    pos_out_masks: Vec<Membership>,
}

impl SharedIterate {
    /// Builds the sµ implementation.
    pub fn new(ctx: &MopContext) -> Result<Self> {
        Self::build(ctx, false)
    }

    /// Builds the cµ implementation.
    pub fn new_channel(ctx: &MopContext) -> Result<Self> {
        Self::build(ctx, true)
    }

    fn build(ctx: &MopContext, channel_mode: bool) -> Result<Self> {
        let specs = extract_iter(ctx)?;
        let first = specs
            .first()
            .ok_or_else(|| RumorError::exec("empty iterate m-op".to_string()))?
            .clone();
        let same_core = specs.iter().all(|s| {
            s.filter == first.filter && s.rebind == first.rebind && s.rebind_map == first.rebind_map
        });
        if !same_core {
            return Err(RumorError::exec(
                "µ m-op members must share filter/rebind/map".to_string(),
            ));
        }
        if !channel_mode {
            let p0 = ctx.members[0].input_positions[0];
            if ctx.members.iter().any(|m| m.input_positions[0] != p0) {
                return Err(RumorError::exec(
                    "sµ members must read the same left stream".to_string(),
                ));
            }
        }
        let (keys, _residual) = first.rebind.split_equi_join();
        let keyed = keyed_mode_sound(&first.filter, &keys);
        let mut members_by_window: Vec<(u64, usize)> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.window, i))
            .collect();
        members_by_window.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let max_window = members_by_window.first().map(|&(w, _)| w).unwrap_or(0);
        let outputs = OutputGroups::new(&ctx.members);
        let left_positions: Vec<usize> = ctx.members.iter().map(|m| m.input_positions[0]).collect();
        let (windows_desc, prefix_masks, pos_out_masks) =
            if channel_mode && outputs.uniform_channel().is_some() {
                let windows_desc: Vec<u64> = members_by_window.iter().map(|&(w, _)| w).collect();
                let mut prefix_masks = Vec::with_capacity(members_by_window.len() + 1);
                let mut acc = Membership::empty();
                prefix_masks.push(acc.clone());
                for &(_, m) in &members_by_window {
                    acc.insert(outputs.position_of(m));
                    prefix_masks.push(acc.clone());
                }
                let max_pos = left_positions.iter().copied().max().unwrap_or(0);
                let mut pos_out_masks = vec![Membership::empty(); max_pos + 1];
                for (m, &pos) in left_positions.iter().enumerate() {
                    pos_out_masks[pos].insert(outputs.position_of(m));
                }
                (windows_desc, prefix_masks, pos_out_masks)
            } else {
                (Vec::new(), Vec::new(), Vec::new())
            };
        Ok(SharedIterate {
            spec: first,
            members_by_window,
            max_window,
            channel_mode,
            keyed,
            keys,
            left_positions,
            right_position: ctx.members[0].input_positions[1],
            instances: Vec::new(),
            buckets: HashMap::new(),
            live: 0,
            outputs,
            satisfied: Vec::new(),
            windows_desc,
            prefix_masks,
            pos_out_masks,
        })
    }

    /// Number of live instances.
    pub fn instance_count(&self) -> usize {
        self.live
    }

    /// Whether keyed (AI-index style) evaluation is active.
    pub fn is_keyed(&self) -> bool {
        self.keyed
    }

    fn instance_key(&self, tuple: &Tuple) -> Vec<ValueKey> {
        self.keys
            .iter()
            .map(|&(l, _)| tuple.value(l).cloned().unwrap_or(Value::Null).group_key())
            .collect()
    }

    fn event_key(&self, tuple: &Tuple) -> Vec<ValueKey> {
        self.keys
            .iter()
            .map(|&(_, r)| tuple.value(r).cloned().unwrap_or(Value::Null).group_key())
            .collect()
    }

    fn emit_rebound(
        &mut self,
        out: &mut dyn Emit,
        rebound: &Tuple,
        membership: &Membership,
        dt: u64,
    ) {
        if self.channel_mode {
            // Membership routing intersected with per-member window
            // coverage (see the sequence m-op for the exactness argument).
            if !self.prefix_masks.is_empty() {
                let k = self.windows_desc.partition_point(|&w| w >= dt);
                let mut mapped = Membership::empty();
                for pos in membership.iter() {
                    if let Some(mask) = self.pos_out_masks.get(pos) {
                        mapped = mapped.union(mask);
                    }
                }
                let emitted = mapped.intersect(&self.prefix_masks[k]);
                if !emitted.is_empty() {
                    self.outputs.emit_premapped(out, rebound.clone(), emitted);
                }
                return;
            }
            self.satisfied.clear();
            for &(window, m) in &self.members_by_window {
                if window < dt {
                    break;
                }
                if membership.contains(self.left_positions[m]) {
                    self.satisfied.push(m);
                }
            }
            self.satisfied.sort_unstable();
            let satisfied = std::mem::take(&mut self.satisfied);
            self.outputs.emit_members(out, rebound, &satisfied);
            self.satisfied = satisfied;
        } else {
            for &(window, member) in &self.members_by_window {
                if window < dt {
                    break;
                }
                self.outputs.emit_one(out, rebound.clone(), member);
            }
        }
    }

    /// Runs the edge semantics for the instances in `list` against `event`.
    /// Returns instances to append afterwards (rebinds that moved buckets in
    /// keyed mode are returned via `moved`).
    #[allow(clippy::too_many_arguments)]
    fn run_edges(
        spec: &IterSpec,
        list: &mut Vec<Instance>,
        event: &Tuple,
        horizon: Timestamp,
        emit: &mut impl FnMut(&Tuple, &Membership, u64),
        keyed: bool,
        keys: &[(usize, usize)],
        moved: &mut Vec<(Vec<ValueKey>, Instance)>,
        live: &mut usize,
    ) {
        let initial_len = list.len();
        let mut appended: Vec<Instance> = Vec::new();
        let mut i = 0;
        let mut remaining = initial_len;
        while i < remaining {
            let inst = &list[i];
            if inst.start_ts < horizon {
                *live -= 1;
                list.remove(i);
                remaining -= 1;
                continue;
            }
            if inst.start_ts >= event.ts {
                i += 1;
                continue;
            }
            let ctx = EvalCtx::binary(&inst.tuple, event);
            let f = spec.filter.eval(&ctx);
            let r = spec.rebind.eval(&ctx);
            if r {
                let rebound_tuple = spec.rebind_map.apply_binary(&inst.tuple, event);
                let dt = event.ts - inst.start_ts;
                emit(&rebound_tuple, &inst.membership, dt);
                let rebound = Instance {
                    start_ts: inst.start_ts,
                    tuple: rebound_tuple,
                    membership: inst.membership.clone(),
                };
                let rebucketed = keyed && {
                    let new_key: Vec<ValueKey> = keys
                        .iter()
                        .map(|&(l, _)| {
                            rebound
                                .tuple
                                .value(l)
                                .cloned()
                                .unwrap_or(Value::Null)
                                .group_key()
                        })
                        .collect();
                    let old_key: Vec<ValueKey> = keys
                        .iter()
                        .map(|&(l, _)| {
                            list[i]
                                .tuple
                                .value(l)
                                .cloned()
                                .unwrap_or(Value::Null)
                                .group_key()
                        })
                        .collect();
                    if new_key != old_key {
                        moved.push((new_key, rebound.clone()));
                        true
                    } else {
                        false
                    }
                };
                if f {
                    // Non-determinism: keep the original (filter edge) and
                    // add the rebound copy (rebind edge).
                    if !rebucketed {
                        appended.push(rebound);
                        *live += 1;
                    } else {
                        *live += 1;
                    }
                    i += 1;
                } else if rebucketed {
                    list.remove(i);
                    remaining -= 1;
                    // live count unchanged: one died here, one moved there.
                    *live -= 1;
                    *live += 1;
                    // (net zero, spelled out for clarity)
                } else {
                    list[i] = rebound;
                    i += 1;
                }
            } else if f {
                i += 1;
            } else {
                *live -= 1;
                list.remove(i);
                remaining -= 1;
            }
        }
        list.extend(appended);
    }

    /// Whether the rebind map passes every key attribute through unchanged,
    /// so a rebound instance can never migrate to another key bucket.
    fn key_preserved(&self) -> bool {
        self.keys.iter().all(|&(l, _)| {
            self.spec.rebind_map.outputs.get(l).is_some_and(|ne| {
                ne.expr
                    == rumor_expr::Expr::Col {
                        side: rumor_expr::Side::Left,
                        index: l,
                    }
            })
        })
    }

    fn process_event(&mut self, event: &Tuple, out: &mut dyn Emit) {
        let horizon = event.ts.saturating_sub(self.max_window);
        // Split borrows: emissions need &mut outputs but not the stores.
        let mut emissions: Vec<(Tuple, Membership, u64)> = Vec::new();
        let mut emit = |t: &Tuple, m: &Membership, dt: u64| {
            emissions.push((t.clone(), m.clone(), dt));
        };
        let mut moved: Vec<(Vec<ValueKey>, Instance)> = Vec::new();
        if self.keyed {
            let key = self.event_key(event);
            if let Some(mut list) = self.buckets.remove(&key) {
                Self::run_edges(
                    &self.spec,
                    &mut list,
                    event,
                    horizon,
                    &mut emit,
                    true,
                    &self.keys,
                    &mut moved,
                    &mut self.live,
                );
                if !list.is_empty() {
                    self.buckets.insert(key, list);
                }
            }
            for (k, inst) in moved {
                self.buckets.entry(k).or_default().push(inst);
            }
        } else {
            let mut list = std::mem::take(&mut self.instances);
            Self::run_edges(
                &self.spec,
                &mut list,
                event,
                horizon,
                &mut emit,
                false,
                &self.keys,
                &mut moved,
                &mut self.live,
            );
            self.instances = list;
        }
        for (tuple, membership, dt) in emissions {
            self.emit_rebound(out, &tuple, &membership, dt);
        }
    }
}

impl MultiOp for SharedIterate {
    fn process(&mut self, port: PortId, input: &ChannelTuple, out: &mut dyn Emit) {
        if port.index() == 0 {
            if self.channel_mode {
                if !self.left_positions.iter().any(|&pos| input.belongs_to(pos)) {
                    return;
                }
            } else if !input.belongs_to(self.left_positions[0]) {
                return;
            }
            let inst = Instance {
                start_ts: input.tuple.ts,
                tuple: input.tuple.clone(),
                membership: input.membership.clone(),
            };
            self.live += 1;
            if self.keyed {
                let key = self.instance_key(&inst.tuple);
                self.buckets.entry(key).or_default().push(inst);
            } else {
                self.instances.push(inst);
            }
        } else {
            if !input.belongs_to(self.right_position) {
                return;
            }
            let event = input.tuple.clone();
            self.process_event(&event, out);
        }
    }

    fn process_batch_keyed(&mut self, port: PortId, inputs: &[ChannelTuple], out: &mut dyn Emit) {
        // Per-key sub-batching is sound exactly when per-key behaviour is
        // self-contained across the run: keyed mode guarantees foreign-key
        // events never touch a bucket, and a key-preserving rebind map
        // guarantees no instance migrates buckets mid-run. Expiry is pure
        // GC (an instance past max_window can emit for no member), so
        // inter-key reordering cannot change any emission; each emission
        // carries its event's ts and the engine re-sorts (the
        // `process_batch_keyed` contract). Everything else — port-0
        // inserts, scan mode, key-rewriting rebinds — takes the per-tuple
        // path.
        if port.index() == 0 || !self.keyed || !self.key_preserved() {
            for input in inputs {
                self.process(port, input, out);
            }
            return;
        }
        let events: Vec<&Tuple> = inputs
            .iter()
            .filter(|ct| ct.belongs_to(self.right_position))
            .map(|ct| &ct.tuple)
            .collect();
        if events.is_empty() {
            return;
        }
        let mut order: Vec<Vec<ValueKey>> = Vec::new();
        let mut groups: HashMap<Vec<ValueKey>, Vec<u32>> = HashMap::new();
        for (i, e) in events.iter().enumerate() {
            let key = self.event_key(e);
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut o) => o.get_mut().push(i as u32),
                std::collections::hash_map::Entry::Vacant(v) => {
                    order.push(v.key().clone());
                    v.insert(vec![i as u32]);
                }
            }
        }
        for key in order {
            let idxs = groups.remove(&key).expect("grouped key listed once");
            let Some(mut list) = self.buckets.remove(&key) else {
                continue;
            };
            for &i in &idxs {
                let event = events[i as usize];
                let horizon = event.ts.saturating_sub(self.max_window);
                let mut emissions: Vec<(Tuple, Membership, u64)> = Vec::new();
                let mut emit = |t: &Tuple, m: &Membership, dt: u64| {
                    emissions.push((t.clone(), m.clone(), dt));
                };
                let mut moved: Vec<(Vec<ValueKey>, Instance)> = Vec::new();
                // The key-preservation proof makes migration impossible, so
                // run_edges may skip the rebucketing check (keyed = false):
                // every survivor stays in the held-out bucket.
                Self::run_edges(
                    &self.spec,
                    &mut list,
                    event,
                    horizon,
                    &mut emit,
                    false,
                    &self.keys,
                    &mut moved,
                    &mut self.live,
                );
                debug_assert!(moved.is_empty());
                for (tuple, membership, dt) in emissions {
                    self.emit_rebound(out, &tuple, &membership, dt);
                }
                if list.is_empty() {
                    break;
                }
            }
            if !list.is_empty() {
                self.buckets.insert(key, list);
            }
        }
    }

    fn partition_keys(&self) -> rumor_core::PartitionKeys {
        // Keyed mode already proves that events of a foreign key leave an
        // instance untouched (the filter passes them, the rebind's equi
        // conjunct fails), so per-key behaviour is self-contained — but a
        // rebind may still *rewrite* the key attribute, migrating the
        // instance to another bucket. A single-process engine just re-files
        // it; a partitioned one cannot move state across workers, so the
        // key is only partition-safe when the rebind map passes every key
        // attribute through unchanged.
        if self.keyed && self.key_preserved() {
            let (l, r): (Vec<usize>, Vec<usize>) = self.keys.iter().copied().unzip();
            rumor_core::PartitionKeys::Equi {
                per_port: vec![l, r],
            }
        } else {
            rumor_core::PartitionKeys::Opaque
        }
    }

    fn port_batch_safe(&self) -> bool {
        // Port 0 only appends instances; `run_edges` skips any instance
        // with `start_ts >= event.ts` and expiry is a pure GC horizon, so
        // early insertion of same-batch future instances is unobservable.
        true
    }

    fn state_size(&self) -> usize {
        self.live
    }

    fn name(&self) -> &'static str {
        if self.channel_mode {
            "channel-iterate"
        } else {
            "shared-iterate"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::logical::OpDef;
    use rumor_core::{MopKind, PlanGraph, VecEmit};
    use rumor_expr::{NamedExpr, SchemaMap};
    use rumor_types::Schema;

    fn monotone_spec(window: u64) -> IterSpec {
        IterSpec {
            filter: Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
            rebind: Predicate::and(vec![
                Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
            ]),
            rebind_map: SchemaMap::new(vec![
                NamedExpr::new("a0", Expr::col(0)),
                NamedExpr::new("a1", Expr::rcol(1)),
            ]),
            window,
        }
    }

    fn ctx_with(windows: &[u64]) -> MopContext {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let t = p.source_by_name("T").unwrap().stream;
        let ids: Vec<_> = windows
            .iter()
            .map(|&w| {
                p.add_op(OpDef::Iterate(monotone_spec(w)), vec![s, t])
                    .unwrap()
                    .0
            })
            .collect();
        let merged = p.merge_mops(&ids, MopKind::SharedIterate).unwrap();
        MopContext::build(&p, merged).unwrap()
    }

    #[test]
    fn keyed_mode_detected_for_monotone_pattern() {
        let ctx = ctx_with(&[100]);
        let op = SharedIterate::new(&ctx).unwrap();
        assert!(op.is_keyed());
    }

    #[test]
    fn keyed_mode_unsound_cases_fall_back_to_scan() {
        // A filter that could delete instances of other keys.
        let mut spec = monotone_spec(100);
        spec.filter = Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::lit(5i64));
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let t = p.source_by_name("T").unwrap().stream;
        let (id, _) = p.add_op(OpDef::Iterate(spec), vec![s, t]).unwrap();
        let ctx = MopContext::build(&p, id).unwrap();
        let op = SharedIterate::new(&ctx).unwrap();
        assert!(!op.is_keyed());
    }

    #[test]
    fn monotone_pattern_evolution() {
        let ctx = ctx_with(&[100]);
        let mut op = SharedIterate::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        let feed =
            |op: &mut SharedIterate, port: PortId, ts: u64, vals: &[i64], sink: &mut VecEmit| {
                op.process(port, &ChannelTuple::solo(Tuple::ints(ts, vals)), sink);
            };
        feed(&mut op, PortId::LEFT, 0, &[7, 10], &mut sink);
        feed(&mut op, PortId::RIGHT, 1, &[7, 15], &mut sink); // rebind
        feed(&mut op, PortId::RIGHT, 2, &[8, 99], &mut sink); // other key
        feed(&mut op, PortId::RIGHT, 3, &[7, 20], &mut sink); // rebind
        assert_eq!(sink.out.len(), 2);
        assert_eq!(sink.out[0].1, Tuple::ints(1, &[7, 15]));
        assert_eq!(sink.out[1].1, Tuple::ints(3, &[7, 20]));
        // Non-increasing same-key event kills the pattern.
        feed(&mut op, PortId::RIGHT, 4, &[7, 1], &mut sink);
        assert_eq!(op.instance_count(), 0);
    }

    #[test]
    fn per_member_window_filtering() {
        let ctx = ctx_with(&[2, 100]);
        let mut op = SharedIterate::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[7, 10])),
            &mut sink,
        );
        // dt = 5 > 2: only the window-100 member gets the emission.
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(5, &[7, 15])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1);
        assert_eq!(sink.out[0].0, ctx.members[1].out_channel);
    }

    #[test]
    fn expiry_removes_instances() {
        let ctx = ctx_with(&[3]);
        let mut op = SharedIterate::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[7, 10])),
            &mut sink,
        );
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(10, &[7, 15])),
            &mut sink,
        );
        assert!(sink.out.is_empty());
        assert_eq!(op.instance_count(), 0);
    }

    #[test]
    fn duplication_on_both_edges() {
        let spec = IterSpec {
            filter: Predicate::True,
            rebind: Predicate::True,
            rebind_map: SchemaMap::new(vec![
                NamedExpr::new("a0", Expr::col(0)),
                NamedExpr::new("a1", Expr::rcol(1)),
            ]),
            window: 100,
        };
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let t = p.source_by_name("T").unwrap().stream;
        let (id, _) = p.add_op(OpDef::Iterate(spec), vec![s, t]).unwrap();
        let ctx = MopContext::build(&p, id).unwrap();
        let mut op = SharedIterate::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[1, 0])),
            &mut sink,
        );
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(1, &[1, 5])),
            &mut sink,
        );
        assert_eq!(op.instance_count(), 2, "filter + rebind duplicate");
        assert_eq!(sink.out.len(), 1);
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(2, &[1, 6])),
            &mut sink,
        );
        assert_eq!(op.instance_count(), 4);
        assert_eq!(sink.out.len(), 3);
    }

    fn channel_ctx(n: usize) -> MopContext {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let t = p.source_by_name("T").unwrap().stream;
        let mut ups = Vec::new();
        let mut outs = Vec::new();
        for i in 0..n {
            let (id, o) = p
                .add_op(
                    OpDef::Select(Predicate::attr_eq_const(1, i as i64)),
                    vec![s],
                )
                .unwrap();
            ups.push(id);
            outs.push(o);
        }
        p.merge_mops(&ups, MopKind::IndexedSelect).unwrap();
        let mus: Vec<_> = outs
            .iter()
            .map(|&o| {
                p.add_op(OpDef::Iterate(monotone_spec(100)), vec![o, t])
                    .unwrap()
                    .0
            })
            .collect();
        p.encode_channel(&outs).unwrap();
        let merged = p.merge_mops(&mus, MopKind::ChannelIterate).unwrap();
        let down_outs: Vec<_> = p.mop(merged).output_streams().collect();
        p.encode_channel(&down_outs).unwrap();
        MopContext::build(&p, merged).unwrap()
    }

    #[test]
    fn channel_mode_single_instance_for_all_queries() {
        let ctx = channel_ctx(5);
        let mut op = SharedIterate::new_channel(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(0, &[7, 10]), Membership::all(5)),
            &mut sink,
        );
        assert_eq!(op.instance_count(), 1);
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(1, &[7, 15])),
            &mut sink,
        );
        // One rebind evaluation, one output channel tuple for 5 queries.
        assert_eq!(sink.out.len(), 1);
        assert_eq!(sink.out[0].2.len(), 5);
        assert_eq!(sink.out[0].1, Tuple::ints(1, &[7, 15]));
    }
}
