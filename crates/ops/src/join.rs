//! Shared window-join m-ops.
//!
//! * [`SharedJoin`] — rule s⋈ \[12\]: joins with the same predicate but
//!   different window lengths over the same stream pair. One hash-indexed
//!   state sized to the *maximum* window serves every member; an output
//!   pair is routed to exactly the members whose window covers the
//!   timestamp distance.
//! * [`PrecisionJoin`] — rule c⋈ \[14\]: identical joins whose left inputs
//!   are sharable streams encoded by a channel. Left state stores each
//!   channel tuple once with its membership; matches propagate the
//!   membership to the output — "precision sharing": no duplicated state,
//!   no false positives.

use std::collections::{HashMap, VecDeque};

use rumor_core::logical::JoinSpec;
use rumor_core::{ChannelTuple, Emit, MopContext, MultiOp};
use rumor_expr::{EvalCtx, Predicate};
use rumor_types::{Membership, PortId, Result, RumorError, Timestamp, Tuple, ValueKey};

use crate::emitgroup::OutputGroups;
use crate::single::concat_with_ts;

fn extract_join(ctx: &MopContext) -> Result<Vec<JoinSpec>> {
    ctx.members
        .iter()
        .map(|m| match &m.def {
            rumor_core::OpDef::Join(spec) => Ok(spec.clone()),
            other => Err(RumorError::exec(format!(
                "join m-op given non-join member {other}"
            ))),
        })
        .collect()
}

fn key_of(tuple: &Tuple, attrs: &[usize]) -> Vec<ValueKey> {
    attrs
        .iter()
        .map(|&i| {
            tuple
                .value(i)
                .cloned()
                .unwrap_or(rumor_types::Value::Null)
                .group_key()
        })
        .collect()
}

/// One side of a hash-indexed window-join state with FIFO eviction.
struct SideState<T> {
    buckets: HashMap<Vec<ValueKey>, VecDeque<T>>,
    fifo: VecDeque<(Timestamp, Vec<ValueKey>)>,
}

impl<T> SideState<T> {
    fn new() -> Self {
        SideState {
            buckets: HashMap::new(),
            fifo: VecDeque::new(),
        }
    }

    /// Number of buffered (not yet evicted) tuples on this side.
    fn len(&self) -> usize {
        self.fifo.len()
    }

    fn insert(&mut self, ts: Timestamp, key: Vec<ValueKey>, item: T) {
        self.buckets.entry(key.clone()).or_default().push_back(item);
        self.fifo.push_back((ts, key));
    }

    fn evict(&mut self, horizon: Timestamp) {
        while self.fifo.front().is_some_and(|(ts, _)| *ts < horizon) {
            let (_, key) = self.fifo.pop_front().expect("checked front");
            if let Some(bucket) = self.buckets.get_mut(&key) {
                bucket.pop_front();
                if bucket.is_empty() {
                    self.buckets.remove(&key);
                }
            }
        }
    }

    fn probe(&self, key: &[ValueKey]) -> impl Iterator<Item = &T> {
        self.buckets.get(key).into_iter().flatten()
    }
}

/// Shared window join across window lengths (rule s⋈).
pub struct SharedJoin {
    /// Left-side equi-key attribute positions.
    left_attrs: Vec<usize>,
    /// Right-side equi-key attribute positions, parallel to `left_attrs`.
    right_attrs: Vec<usize>,
    residual: Predicate,
    /// `(window, member)` sorted by window descending: emission walks the
    /// prefix whose windows cover the pair's timestamp distance.
    members_by_window: Vec<(u64, usize)>,
    max_window: u64,
    in_positions: [usize; 2],
    left: SideState<Tuple>,
    right: SideState<Tuple>,
    outputs: OutputGroups,
}

impl SharedJoin {
    /// Builds the shared join.
    pub fn new(ctx: &MopContext) -> Result<Self> {
        let specs = extract_join(ctx)?;
        let first = specs
            .first()
            .ok_or_else(|| RumorError::exec("empty join m-op".to_string()))?;
        if specs.iter().any(|s| s.predicate != first.predicate) {
            return Err(RumorError::exec(
                "s⋈ members must share the join predicate".to_string(),
            ));
        }
        let (keys, residual) = first.predicate.split_equi_join();
        // Hoisted out of the per-tuple loop: `process` used to unzip the
        // key pairs into two fresh Vecs per input tuple.
        let (left_attrs, right_attrs) = keys.into_iter().unzip();
        let mut members_by_window: Vec<(u64, usize)> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.window, i))
            .collect();
        members_by_window.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let max_window = members_by_window.first().map(|&(w, _)| w).unwrap_or(0);
        Ok(SharedJoin {
            left_attrs,
            right_attrs,
            residual,
            members_by_window,
            max_window,
            in_positions: [
                ctx.members[0].input_positions[0],
                ctx.members[0].input_positions[1],
            ],
            left: SideState::new(),
            right: SideState::new(),
            outputs: OutputGroups::new(&ctx.members),
        })
    }

    fn emit_match(
        outputs: &mut OutputGroups,
        members_by_window: &[(u64, usize)],
        out: &mut dyn Emit,
        left: &Tuple,
        right: &Tuple,
        now: Timestamp,
        dt: u64,
    ) {
        for &(window, member) in members_by_window {
            if window < dt {
                break; // windows sorted descending
            }
            outputs.emit_one(out, concat_with_ts(left, right, now), member);
        }
    }
}

impl SharedJoin {
    #[inline]
    fn process_one(&mut self, p: usize, input: &ChannelTuple, out: &mut dyn Emit) {
        if !input.belongs_to(self.in_positions[p]) {
            return;
        }
        let tuple = &input.tuple;
        let now = tuple.ts;
        let horizon = now.saturating_sub(self.max_window);
        self.left.evict(horizon);
        self.right.evict(horizon);

        if p == 0 {
            let key = key_of(tuple, &self.left_attrs);
            for r in self.right.probe(&key) {
                if self.residual.eval(&EvalCtx::binary(tuple, r)) {
                    let dt = now.abs_diff(r.ts);
                    Self::emit_match(
                        &mut self.outputs,
                        &self.members_by_window,
                        out,
                        tuple,
                        r,
                        now,
                        dt,
                    );
                }
            }
            self.left.insert(now, key, tuple.clone());
        } else {
            let key = key_of(tuple, &self.right_attrs);
            for l in self.left.probe(&key) {
                if self.residual.eval(&EvalCtx::binary(l, tuple)) {
                    let dt = now.abs_diff(l.ts);
                    Self::emit_match(
                        &mut self.outputs,
                        &self.members_by_window,
                        out,
                        l,
                        tuple,
                        now,
                        dt,
                    );
                }
            }
            self.right.insert(now, key, tuple.clone());
        }
    }
}

impl MultiOp for SharedJoin {
    fn process(&mut self, port: PortId, input: &ChannelTuple, out: &mut dyn Emit) {
        self.process_one(port.index(), input, out);
    }

    fn process_batch(&mut self, port: PortId, inputs: &[ChannelTuple], out: &mut dyn Emit) {
        // One port bounds-check and vtable dispatch per run; probe/insert
        // stays per-tuple because the state mutates between tuples.
        let p = port.index();
        for input in inputs {
            self.process_one(p, input, out);
        }
    }

    fn partition_keys(&self) -> rumor_core::PartitionKeys {
        // Matches require equal key values, window checks are pairwise, and
        // eviction is a pure ts horizon — per-key behaviour is independent
        // of other keys' tuples, so hash partitioning on the equi key is
        // exact. Without an equi key every pair can interact: opaque.
        if self.left_attrs.is_empty() {
            rumor_core::PartitionKeys::Opaque
        } else {
            rumor_core::PartitionKeys::Equi {
                per_port: vec![self.left_attrs.clone(), self.right_attrs.clone()],
            }
        }
    }

    fn state_size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    fn name(&self) -> &'static str {
        "shared-join"
    }
}

/// Precision-sharing join over a channel (rule c⋈).
pub struct PrecisionJoin {
    /// Left-side equi-key attribute positions.
    left_attrs: Vec<usize>,
    /// Right-side equi-key attribute positions, parallel to `left_attrs`.
    right_attrs: Vec<usize>,
    residual: Predicate,
    window: u64,
    /// Per member: position of its left stream in the left channel.
    left_positions: Vec<usize>,
    right_position: usize,
    left: SideState<(Tuple, Membership)>,
    right: SideState<Tuple>,
    outputs: OutputGroups,
    satisfied: Vec<usize>,
}

impl PrecisionJoin {
    /// Builds the precision-sharing join.
    pub fn new(ctx: &MopContext) -> Result<Self> {
        let specs = extract_join(ctx)?;
        let first = specs
            .first()
            .ok_or_else(|| RumorError::exec("empty join m-op".to_string()))?
            .clone();
        if specs.iter().any(|s| *s != first) {
            return Err(RumorError::exec(
                "c⋈ members must have identical definitions".to_string(),
            ));
        }
        let (keys, residual) = first.predicate.split_equi_join();
        let (left_attrs, right_attrs) = keys.into_iter().unzip();
        Ok(PrecisionJoin {
            left_attrs,
            right_attrs,
            residual,
            window: first.window,
            left_positions: ctx.members.iter().map(|m| m.input_positions[0]).collect(),
            right_position: ctx.members[0].input_positions[1],
            left: SideState::new(),
            right: SideState::new(),
            outputs: OutputGroups::new(&ctx.members),
            satisfied: Vec::new(),
        })
    }

    fn emit_with_membership(
        &mut self,
        out: &mut dyn Emit,
        l: &Tuple,
        membership: &Membership,
        r: &Tuple,
        now: Timestamp,
    ) {
        self.satisfied.clear();
        for (m, &pos) in self.left_positions.iter().enumerate() {
            if membership.contains(pos) {
                self.satisfied.push(m);
            }
        }
        if self.satisfied.is_empty() {
            return;
        }
        let row = concat_with_ts(l, r, now);
        let satisfied = std::mem::take(&mut self.satisfied);
        self.outputs.emit_members(out, &row, &satisfied);
        self.satisfied = satisfied;
    }
}

impl PrecisionJoin {
    #[inline]
    fn process_one(&mut self, p: usize, input: &ChannelTuple, out: &mut dyn Emit) {
        let tuple = &input.tuple;
        let now = tuple.ts;
        let horizon = now.saturating_sub(self.window);
        self.left.evict(horizon);
        self.right.evict(horizon);
        if p == 0 {
            let key = key_of(tuple, &self.left_attrs);
            let matches: Vec<Tuple> = self
                .right
                .probe(&key)
                .filter(|r| self.residual.eval(&EvalCtx::binary(tuple, r)))
                .cloned()
                .collect();
            for r in matches {
                self.emit_with_membership(out, tuple, &input.membership.clone(), &r, now);
            }
            self.left
                .insert(now, key, (tuple.clone(), input.membership.clone()));
        } else {
            if !input.belongs_to(self.right_position) {
                return;
            }
            let key = key_of(tuple, &self.right_attrs);
            let matches: Vec<(Tuple, Membership)> = self
                .left
                .probe(&key)
                .filter(|(l, _)| self.residual.eval(&EvalCtx::binary(l, tuple)))
                .cloned()
                .collect();
            for (l, membership) in matches {
                self.emit_with_membership(out, &l, &membership, tuple, now);
            }
            self.right.insert(now, key, tuple.clone());
        }
    }
}

impl MultiOp for PrecisionJoin {
    fn process(&mut self, port: PortId, input: &ChannelTuple, out: &mut dyn Emit) {
        self.process_one(port.index(), input, out);
    }

    fn process_batch(&mut self, port: PortId, inputs: &[ChannelTuple], out: &mut dyn Emit) {
        let p = port.index();
        for input in inputs {
            self.process_one(p, input, out);
        }
    }

    fn partition_keys(&self) -> rumor_core::PartitionKeys {
        // Same argument as the shared join; memberships ride along with the
        // stored tuples and never cross keys.
        if self.left_attrs.is_empty() {
            rumor_core::PartitionKeys::Opaque
        } else {
            rumor_core::PartitionKeys::Equi {
                per_port: vec![self.left_attrs.clone(), self.right_attrs.clone()],
            }
        }
    }

    fn state_size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    fn name(&self) -> &'static str {
        "precision-join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::logical::OpDef;
    use rumor_core::{MopKind, PlanGraph, VecEmit};
    use rumor_expr::{CmpOp, Expr};
    use rumor_types::Schema;

    fn equi_pred() -> Predicate {
        Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0))
    }

    fn shared_ctx(windows: &[u64]) -> MopContext {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let t = p.source_by_name("T").unwrap().stream;
        let ids: Vec<_> = windows
            .iter()
            .map(|&w| {
                p.add_op(
                    OpDef::Join(JoinSpec {
                        predicate: equi_pred(),
                        window: w,
                    }),
                    vec![s, t],
                )
                .unwrap()
                .0
            })
            .collect();
        let merged = p.merge_mops(&ids, MopKind::SharedJoin).unwrap();
        MopContext::build(&p, merged).unwrap()
    }

    #[test]
    fn shared_join_routes_by_window() {
        let ctx = shared_ctx(&[2, 10]);
        let mut op = SharedJoin::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[7, 1])),
            &mut sink,
        );
        // dt = 1: both windows cover.
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(1, &[7, 2])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 2);
        // dt = 5: only the window-10 member.
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(5, &[7, 3])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 3);
        assert_eq!(sink.out[2].0, ctx.members[1].out_channel);
        // dt = 11: nobody.
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(11, &[7, 4])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 3);
    }

    #[test]
    fn shared_join_key_mismatch_no_probe_hit() {
        let ctx = shared_ctx(&[10]);
        let mut op = SharedJoin::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[7, 1])),
            &mut sink,
        );
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(1, &[8, 2])),
            &mut sink,
        );
        assert!(sink.out.is_empty());
    }

    #[test]
    fn shared_join_right_then_left() {
        let ctx = shared_ctx(&[10]);
        let mut op = SharedJoin::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(0, &[3, 9])),
            &mut sink,
        );
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(2, &[3, 8])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1);
        // Left columns first.
        assert_eq!(sink.out[0].1, Tuple::ints(2, &[3, 8, 3, 9]));
    }

    fn precision_ctx(n: usize) -> (PlanGraph, MopContext) {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let t = p.source_by_name("T").unwrap().stream;
        let mut ups = Vec::new();
        let mut outs = Vec::new();
        for i in 0..n {
            let (id, o) = p
                .add_op(
                    OpDef::Select(Predicate::attr_eq_const(1, i as i64)),
                    vec![s],
                )
                .unwrap();
            ups.push(id);
            outs.push(o);
        }
        p.merge_mops(&ups, MopKind::IndexedSelect).unwrap();
        let joins: Vec<_> = outs
            .iter()
            .map(|&o| {
                p.add_op(
                    OpDef::Join(JoinSpec {
                        predicate: equi_pred(),
                        window: 10,
                    }),
                    vec![o, t],
                )
                .unwrap()
                .0
            })
            .collect();
        p.encode_channel(&outs).unwrap();
        let merged = p.merge_mops(&joins, MopKind::PrecisionJoin).unwrap();
        let down_outs: Vec<_> = p.mop(merged).output_streams().collect();
        p.encode_channel(&down_outs).unwrap();
        let ctx = MopContext::build(&p, merged).unwrap();
        (p, ctx)
    }

    #[test]
    fn precision_join_propagates_membership() {
        let (_, ctx) = precision_ctx(3);
        let mut op = PrecisionJoin::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        // Left channel tuple on streams {0, 2}.
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(0, &[7, 0]), Membership::from_indices([0, 2])),
            &mut sink,
        );
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(1, &[7, 5])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1, "one stored copy, one output tuple");
        assert_eq!(sink.out[0].2, Membership::from_indices([0, 2]));
        assert_eq!(sink.out[0].1, Tuple::ints(1, &[7, 0, 7, 5]));
    }

    #[test]
    fn precision_join_window_expiry() {
        let (_, ctx) = precision_ctx(2);
        let mut op = PrecisionJoin::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(0, &[7, 0]), Membership::all(2)),
            &mut sink,
        );
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(20, &[7, 5])),
            &mut sink,
        );
        assert!(sink.out.is_empty());
    }
}
