//! Shared selection m-ops.
//!
//! * [`IndexedSelect`] — rule sσ: predicate indexing over selections that
//!   read the same stream \[10, 16\]. Equality comparisons with constants are
//!   hash-indexed per attribute; remaining predicates are evaluated
//!   sequentially. This m-op is also how Cayuga's FR and AN indexes surface
//!   in RUMOR plans (§4.3, §5.2).
//! * [`ChannelSelect`] — rule cσ: selections with the same definition
//!   reading sharable streams encoded in one channel. The predicate is
//!   evaluated once per distinct definition, and output membership is the
//!   intersection of the input membership with the satisfied members — the
//!   stopping-condition m-op σ{e1..en} of Figure 6(c).

use std::collections::HashMap;

use rumor_core::{ChannelTuple, Emit, MopContext, MultiOp};
use rumor_expr::{EvalCtx, Predicate};
use rumor_types::{PortId, Result, RumorError, ValueKey};

use crate::emitgroup::OutputGroups;

/// Splits a predicate into an indexable `attr = const` head and a residual.
///
/// Returns `(attr, key, residual)` if the predicate — or one conjunct of a
/// top-level conjunction — is an equality between a left attribute and a
/// constant.
pub fn index_split(pred: &Predicate) -> Option<(usize, ValueKey, Predicate)> {
    if let Some(eq) = pred.as_eq_const() {
        return Some((eq.attr, eq.value.group_key(), Predicate::True));
    }
    if let Predicate::And(conjuncts) = pred {
        for (i, c) in conjuncts.iter().enumerate() {
            if let Some(eq) = c.as_eq_const() {
                let mut rest = conjuncts.clone();
                rest.remove(i);
                return Some((eq.attr, eq.value.group_key(), Predicate::and(rest)));
            }
        }
    }
    None
}

fn extract_select(ctx: &MopContext) -> Result<Vec<Predicate>> {
    ctx.members
        .iter()
        .map(|m| match &m.def {
            rumor_core::OpDef::Select(p) => Ok(p.clone()),
            other => Err(RumorError::exec(format!(
                "selection m-op given non-select member {other}"
            ))),
        })
        .collect()
}

/// Predicate-indexed shared selection (rule sσ).
pub struct IndexedSelect {
    /// Position of the (single) input stream within the input channel.
    in_position: usize,
    /// attr → (constant → member indices); probed per tuple.
    indexes: Vec<(usize, HashMap<ValueKey, Vec<u32>>)>,
    /// Residual predicate per indexed member (usually `True`).
    residuals: Vec<Predicate>,
    /// Members whose predicates are not indexable: evaluated one-by-one.
    scan: Vec<u32>,
    predicates: Vec<Predicate>,
    outputs: OutputGroups,
    satisfied: Vec<usize>,
}

impl IndexedSelect {
    /// Builds the index over the member predicates.
    pub fn new(ctx: &MopContext) -> Result<Self> {
        let predicates = extract_select(ctx)?;
        let in_position = ctx
            .members
            .first()
            .map(|m| m.input_positions[0])
            .unwrap_or(0);
        if ctx
            .members
            .iter()
            .any(|m| m.input_positions[0] != in_position)
        {
            return Err(RumorError::exec(
                "sσ members must read the same stream".to_string(),
            ));
        }
        let mut by_attr: HashMap<usize, HashMap<ValueKey, Vec<u32>>> = HashMap::new();
        let mut residuals = vec![Predicate::True; predicates.len()];
        let mut scan = Vec::new();
        for (i, p) in predicates.iter().enumerate() {
            match index_split(p) {
                Some((attr, key, residual)) => {
                    by_attr
                        .entry(attr)
                        .or_default()
                        .entry(key)
                        .or_default()
                        .push(i as u32);
                    residuals[i] = residual;
                }
                None => scan.push(i as u32),
            }
        }
        let mut indexes: Vec<(usize, HashMap<ValueKey, Vec<u32>>)> = by_attr.into_iter().collect();
        indexes.sort_by_key(|(attr, _)| *attr);
        Ok(IndexedSelect {
            in_position,
            indexes,
            residuals,
            scan,
            predicates,
            outputs: OutputGroups::new(&ctx.members),
            satisfied: Vec::new(),
        })
    }

    /// Number of hash-indexed members (diagnostics / tests).
    pub fn indexed_members(&self) -> usize {
        self.predicates.len() - self.scan.len()
    }
}

impl IndexedSelect {
    /// The per-tuple core, shared by the single and batched entry points.
    #[inline]
    fn process_one(&mut self, input: &ChannelTuple, out: &mut dyn Emit) {
        if !input.belongs_to(self.in_position) {
            return;
        }
        let tuple = &input.tuple;
        let ctx = EvalCtx::unary(tuple);
        self.satisfied.clear();
        for (attr, map) in &self.indexes {
            if let Some(v) = tuple.value(*attr) {
                if let Some(candidates) = map.get(&v.group_key()) {
                    for &m in candidates {
                        if self.residuals[m as usize].eval(&ctx) {
                            self.satisfied.push(m as usize);
                        }
                    }
                }
            }
        }
        for &m in &self.scan {
            if self.predicates[m as usize].eval(&ctx) {
                self.satisfied.push(m as usize);
            }
        }
        // Deterministic emission order regardless of index layout.
        self.satisfied.sort_unstable();
        let satisfied = std::mem::take(&mut self.satisfied);
        self.outputs.emit_members(out, tuple, &satisfied);
        self.satisfied = satisfied;
    }
}

impl MultiOp for IndexedSelect {
    fn process(&mut self, _port: PortId, input: &ChannelTuple, out: &mut dyn Emit) {
        self.process_one(input, out);
    }

    fn process_batch(&mut self, _port: PortId, inputs: &[ChannelTuple], out: &mut dyn Emit) {
        // One virtual dispatch per run; the single-index single-member
        // common case (sσ over one plain stream with pure `attr = const`
        // predicates) additionally skips the residual/scan machinery.
        if self.scan.is_empty() && self.indexes.len() == 1 {
            let (attr, map) = &self.indexes[0];
            let attr = *attr;
            for input in inputs {
                if !input.belongs_to(self.in_position) {
                    continue;
                }
                let tuple = &input.tuple;
                let Some(v) = tuple.value(attr) else { continue };
                let Some(candidates) = map.get(&v.group_key()) else {
                    continue;
                };
                let ctx = EvalCtx::unary(tuple);
                self.satisfied.clear();
                for &m in candidates {
                    if self.residuals[m as usize].eval(&ctx) {
                        self.satisfied.push(m as usize);
                    }
                }
                self.satisfied.sort_unstable();
                let satisfied = std::mem::take(&mut self.satisfied);
                self.outputs.emit_members(out, tuple, &satisfied);
                self.satisfied = satisfied;
            }
            return;
        }
        for input in inputs {
            self.process_one(input, out);
        }
    }

    fn is_stateless(&self) -> bool {
        true
    }

    fn grouped_emission(&self) -> bool {
        // `emit_members` groups satisfied members by output channel: one
        // channel tuple (union membership) per channel per input tuple.
        true
    }

    fn name(&self) -> &'static str {
        "indexed-select"
    }
}

/// Channelized shared selection (rule cσ).
pub struct ChannelSelect {
    /// Distinct predicates and the members using each.
    def_groups: Vec<(Predicate, Vec<u32>)>,
    /// Per member: position of its input stream within the input channel.
    in_positions: Vec<usize>,
    /// Union of all member input positions (batch fast-path decode mask).
    member_mask: rumor_types::Membership,
    /// Whether member `m` reads input position `m` and writes output
    /// position `m` on one shared channel — the strict cσ shape, where the
    /// batch path can pass memberships through by intersection.
    identity_mapped: bool,
    outputs: OutputGroups,
    satisfied: Vec<usize>,
}

impl ChannelSelect {
    /// Builds the channelized selection.
    pub fn new(ctx: &MopContext) -> Result<Self> {
        let predicates = extract_select(ctx)?;
        let mut def_groups: Vec<(Predicate, Vec<u32>)> = Vec::new();
        for (i, p) in predicates.iter().enumerate() {
            match def_groups.iter_mut().find(|(q, _)| q == p) {
                Some((_, members)) => members.push(i as u32),
                None => def_groups.push((p.clone(), vec![i as u32])),
            }
        }
        let in_positions: Vec<usize> = ctx.members.iter().map(|m| m.input_positions[0]).collect();
        let member_mask = rumor_types::Membership::from_indices(in_positions.iter().copied());
        let outputs = OutputGroups::new(&ctx.members);
        let identity_mapped = outputs.uniform_channel().is_some()
            && in_positions
                .iter()
                .enumerate()
                .all(|(m, &pos)| pos == m && outputs.position_of(m) == m);
        Ok(ChannelSelect {
            def_groups,
            in_positions,
            member_mask,
            identity_mapped,
            outputs,
            satisfied: Vec::new(),
        })
    }

    /// Number of distinct predicate definitions (1 when the cσ condition
    /// held exactly).
    pub fn distinct_defs(&self) -> usize {
        self.def_groups.len()
    }
}

impl ChannelSelect {
    #[inline]
    fn process_one(&mut self, input: &ChannelTuple, out: &mut dyn Emit) {
        let ctx = EvalCtx::unary(&input.tuple);
        for (pred, members) in &self.def_groups {
            // Decode: members of this definition whose stream carries the
            // tuple. The predicate runs at most once per definition.
            self.satisfied.clear();
            let mut evaluated = None;
            for &m in members {
                if input.belongs_to(self.in_positions[m as usize]) {
                    let ok = *evaluated.get_or_insert_with(|| pred.eval(&ctx));
                    if ok {
                        self.satisfied.push(m as usize);
                    } else {
                        break; // same predicate: nobody else can pass
                    }
                }
            }
            let satisfied = std::mem::take(&mut self.satisfied);
            self.outputs.emit_members(out, &input.tuple, &satisfied);
            self.satisfied = satisfied;
        }
    }
}

impl MultiOp for ChannelSelect {
    fn process(&mut self, _port: PortId, input: &ChannelTuple, out: &mut dyn Emit) {
        self.process_one(input, out);
    }

    fn process_batch(&mut self, _port: PortId, inputs: &[ChannelTuple], out: &mut dyn Emit) {
        // The strict cσ case (one shared definition, members identity-
        // mapped onto one output channel): evaluate the predicate once per
        // tuple and pass the membership through by mask intersection,
        // skipping the per-member decode loop entirely.
        if self.def_groups.len() == 1 && self.identity_mapped {
            let pred = &self.def_groups[0].0;
            for input in inputs {
                let membership = input.membership.intersect(&self.member_mask);
                if membership.is_empty() {
                    continue;
                }
                if pred.eval(&EvalCtx::unary(&input.tuple)) {
                    self.outputs
                        .emit_premapped(out, input.tuple.clone(), membership);
                }
            }
            return;
        }
        for input in inputs {
            self.process_one(input, out);
        }
    }

    fn is_stateless(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "channel-select"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::logical::OpDef;
    use rumor_core::{MopKind, PlanGraph, VecEmit};
    use rumor_expr::{CmpOp, Expr};
    use rumor_types::{Membership, Schema, Tuple, Value};

    fn indexed_ctx(preds: Vec<Predicate>) -> (PlanGraph, MopContext) {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(3), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let ids: Vec<_> = preds
            .into_iter()
            .map(|pred| p.add_op(OpDef::Select(pred), vec![s]).unwrap().0)
            .collect();
        let merged = p.merge_mops(&ids, MopKind::IndexedSelect).unwrap();
        let ctx = MopContext::build(&p, merged).unwrap();
        (p, ctx)
    }

    #[test]
    fn index_split_variants() {
        let eq = Predicate::attr_eq_const(2, 9i64);
        let (attr, key, res) = index_split(&eq).unwrap();
        assert_eq!(attr, 2);
        assert_eq!(key, Value::Int(9).group_key());
        assert_eq!(res, Predicate::True);

        let conj = Predicate::and(vec![
            Predicate::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(3i64)),
            Predicate::attr_eq_const(0, 5i64),
        ]);
        let (attr, _, res) = index_split(&conj).unwrap();
        assert_eq!(attr, 0);
        assert_eq!(
            res,
            Predicate::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(3i64))
        );

        assert!(index_split(&Predicate::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(1i64))).is_none());
    }

    #[test]
    fn indexed_select_probes_constants() {
        let (_, ctx) = indexed_ctx(vec![
            Predicate::attr_eq_const(0, 1i64),
            Predicate::attr_eq_const(0, 2i64),
            Predicate::attr_eq_const(1, 7i64),
            Predicate::cmp(CmpOp::Lt, Expr::col(2), Expr::lit(100i64)), // scan
        ]);
        let mut op = IndexedSelect::new(&ctx).unwrap();
        assert_eq!(op.indexed_members(), 3);
        let mut sink = VecEmit::default();
        // a0=1 (member 0), a1=7 (member 2), a2=5<100 (member 3).
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[1, 7, 5])),
            &mut sink,
        );
        let hit: Vec<_> = sink.out.iter().map(|(ch, _, _)| *ch).collect();
        assert_eq!(
            hit,
            vec![
                ctx.members[0].out_channel,
                ctx.members[2].out_channel,
                ctx.members[3].out_channel
            ]
        );
    }

    #[test]
    fn indexed_select_residual_conjuncts() {
        let (_, ctx) = indexed_ctx(vec![Predicate::and(vec![
            Predicate::attr_eq_const(0, 1i64),
            Predicate::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(10i64)),
        ])]);
        let mut op = IndexedSelect::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[1, 5])),
            &mut sink,
        );
        assert!(sink.out.is_empty(), "index hit but residual fails");
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(1, &[1, 11])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1);
    }

    #[test]
    fn indexed_select_matches_duplicate_constants() {
        let (_, ctx) = indexed_ctx(vec![
            Predicate::attr_eq_const(0, 4i64),
            Predicate::attr_eq_const(0, 4i64),
        ]);
        // Identical predicates are deduplicated at merge time, so this m-op
        // has a single member; both queries read its one output stream.
        assert_eq!(ctx.members.len(), 1);
        let mut op = IndexedSelect::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[4])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1);
    }

    fn channel_ctx(preds: Vec<Predicate>) -> (PlanGraph, MopContext) {
        // n upstream selections over S (merged, outputs channel-encoded),
        // then n downstream selections with the given predicates.
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(3), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let n = preds.len();
        let mut ups = Vec::new();
        let mut outs = Vec::new();
        for i in 0..n {
            let (id, o) = p
                .add_op(
                    OpDef::Select(Predicate::attr_eq_const(0, i as i64)),
                    vec![s],
                )
                .unwrap();
            ups.push(id);
            outs.push(o);
        }
        p.merge_mops(&ups, MopKind::IndexedSelect).unwrap();
        let downs: Vec<_> = preds
            .into_iter()
            .enumerate()
            .map(|(i, pred)| p.add_op(OpDef::Select(pred), vec![outs[i]]).unwrap().0)
            .collect();
        p.encode_channel(&outs).unwrap();
        let merged = p.merge_mops(&downs, MopKind::ChannelSelect).unwrap();
        let down_outs: Vec<_> = p.mop(merged).output_streams().collect();
        p.encode_channel(&down_outs).unwrap();
        let ctx = MopContext::build(&p, merged).unwrap();
        (p, ctx)
    }

    #[test]
    fn channel_select_intersects_membership() {
        let pred = Predicate::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(10i64));
        let (p, ctx) = channel_ctx(vec![pred.clone(), pred.clone(), pred]);
        let mut op = ChannelSelect::new(&ctx).unwrap();
        assert_eq!(op.distinct_defs(), 1);
        let mut sink = VecEmit::default();
        // Tuple belongs to streams {0, 2} and passes the predicate: one
        // output channel tuple with the same membership (on out positions).
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(
                Tuple::ints(0, &[0, 11, 0]),
                Membership::from_indices([0, 2]),
            ),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1);
        let out_ch = p.channel_of(ctx.members[0].output);
        assert_eq!(sink.out[0].0, out_ch);
        assert_eq!(sink.out[0].2, Membership::from_indices([0, 2]));
        // Failing tuple: nothing.
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(
                Tuple::ints(1, &[0, 5, 0]),
                Membership::from_indices([0, 1, 2]),
            ),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1);
    }

    #[test]
    fn channel_select_handles_mixed_defs() {
        // Generalization beyond the strict cσ condition: two distinct
        // predicate definitions, each evaluated once.
        let (_, ctx) = channel_ctx(vec![
            Predicate::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(10i64)),
            Predicate::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(10i64)),
            Predicate::cmp(CmpOp::Lt, Expr::col(1), Expr::lit(5i64)),
        ]);
        let mut op = ChannelSelect::new(&ctx).unwrap();
        assert_eq!(op.distinct_defs(), 2);
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(
                Tuple::ints(0, &[0, 11, 0]),
                Membership::from_indices([0, 1, 2]),
            ),
            &mut sink,
        );
        // Members 0,1 pass (one grouped emission); member 2 fails.
        assert_eq!(sink.out.len(), 1);
        assert_eq!(sink.out[0].2, Membership::from_indices([0, 1]));
    }
}
