//! The reference m-op: one-by-one execution of the member operators.
//!
//! §2.2 *defines* m-op semantics as "conceptually execut\[ing\] all its
//! operators that have input stream S [...] without sharing state".
//! `NaiveMop` is that definition made executable: a vector of independent
//! single-operator executors, each with its own state. Every shared
//! implementation in this crate is property-tested for I/O equivalence
//! against it.

use rumor_core::logical::OpDef;
use rumor_core::{ChannelTuple, Emit, MopContext, MultiOp};
use rumor_types::{PortId, Result, Tuple};

use crate::emitgroup::OutputGroups;
use crate::single::SingleOp;

/// Vector-of-operators m-op (the reference implementation).
pub struct NaiveMop {
    execs: Vec<SingleOp>,
    /// Per member, per port: position within the port's input channel.
    positions: Vec<Vec<usize>>,
    outputs: OutputGroups,
    buf: Vec<Tuple>,
    /// All members are selections/projections: no cross-tuple state.
    stateless: bool,
}

impl NaiveMop {
    /// Builds the reference implementation for an m-op context.
    pub fn new(ctx: &MopContext) -> Result<Self> {
        Ok(NaiveMop {
            execs: ctx.members.iter().map(|m| SingleOp::new(&m.def)).collect(),
            positions: ctx
                .members
                .iter()
                .map(|m| m.input_positions.clone())
                .collect(),
            outputs: OutputGroups::new(&ctx.members),
            buf: Vec::new(),
            stateless: ctx
                .members
                .iter()
                .all(|m| matches!(m.def, OpDef::Select(_) | OpDef::Project(_))),
        })
    }
}

impl MultiOp for NaiveMop {
    fn process(&mut self, port: PortId, input: &ChannelTuple, out: &mut dyn Emit) {
        let p = port.index();
        for (idx, exec) in self.execs.iter_mut().enumerate() {
            let Some(&pos) = self.positions[idx].get(p) else {
                continue; // member has no such port
            };
            if !input.belongs_to(pos) {
                continue; // decoding step: tuple not on this member's stream
            }
            exec.process(p, &input.tuple, &mut self.buf);
            for t in self.buf.drain(..) {
                self.outputs.emit_one(out, t, idx);
            }
        }
    }

    fn is_stateless(&self) -> bool {
        self.stateless
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::logical::OpDef;
    use rumor_core::{MopContext, MopKind, PlanGraph, VecEmit};
    use rumor_expr::Predicate;
    use rumor_types::{Membership, Schema};

    #[test]
    fn runs_members_independently() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(1), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let (a, _) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (b, _) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        let merged = p.merge_mops(&[a, b], MopKind::Naive).unwrap();
        let ctx = MopContext::build(&p, merged).unwrap();
        let mut op = NaiveMop::new(&ctx).unwrap();

        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[1])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1, "only the first predicate matches");
        assert_eq!(sink.out[0].0, ctx.members[0].out_channel);
    }

    #[test]
    fn respects_channel_decoding() {
        // Build a channel of two selection outputs, consumed by two
        // downstream selects; a tuple belonging only to stream 1 must only
        // reach member 1.
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(1), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let (a, oa) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (b, ob) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        let _sel = p.merge_mops(&[a, b], MopKind::IndexedSelect).unwrap();
        let (c1, _) = p.add_op(OpDef::Select(Predicate::True), vec![oa]).unwrap();
        let (c2, _) = p.add_op(OpDef::Select(Predicate::True), vec![ob]).unwrap();
        p.encode_channel(&[oa, ob]).unwrap();
        let down = p.merge_mops(&[c1, c2], MopKind::Naive).unwrap();
        let ctx = MopContext::build(&p, down).unwrap();
        let mut op = NaiveMop::new(&ctx).unwrap();

        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(0, &[5]), Membership::singleton(1)),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1);
        assert_eq!(sink.out[0].0, ctx.members[1].out_channel);
    }
}
