//! Shared window-aggregation m-ops.
//!
//! * [`SharedAggregate`] — rule sα \[22\]: aggregations with the same
//!   function, input expression, and window but *different group-by
//!   specifications* over one stream. The window buffer, input-expression
//!   evaluation, and eviction scan are shared; each member keeps
//!   incrementally-maintained per-group states.
//! * [`FragmentAggregate`] — rule cα \[15\]: *identical* aggregations over
//!   sharable streams encoded by a channel. Partial aggregates are kept per
//!   (group, membership-fragment); a member's aggregate is the combination
//!   of the fragments its stream participates in, so tuples shared by many
//!   streams are stored and folded exactly once.

use std::collections::{HashMap, VecDeque};

use rumor_core::logical::AggSpec;
use rumor_core::{ChannelTuple, Emit, MopContext, MultiOp};
use rumor_expr::EvalCtx;
use rumor_types::{Membership, PortId, Result, RumorError, Timestamp, Tuple, Value, ValueKey};

use crate::emitgroup::OutputGroups;
use crate::single::{group_key, GroupState};

fn extract_agg(ctx: &MopContext) -> Result<Vec<AggSpec>> {
    ctx.members
        .iter()
        .map(|m| match &m.def {
            rumor_core::OpDef::Aggregate(spec) => Ok(spec.clone()),
            other => Err(RumorError::exec(format!(
                "aggregate m-op given non-aggregate member {other}"
            ))),
        })
        .collect()
}

fn output_row(tuple: &Tuple, group_by: &[usize], result: Value) -> Tuple {
    let mut values = Vec::with_capacity(group_by.len() + 1);
    for &i in group_by {
        values.push(tuple.value(i).cloned().unwrap_or(Value::Null));
    }
    values.push(result);
    Tuple::new(tuple.ts, values)
}

/// Shared aggregate evaluation across group-by specifications (rule sα).
pub struct SharedAggregate {
    specs: Vec<AggSpec>,
    in_position: usize,
    /// Shared window buffer: (ts, input tuple, aggregated value). Stored
    /// once no matter how many members aggregate it.
    window: VecDeque<(Timestamp, Tuple, Value)>,
    window_len: u64,
    /// Per member: group key → incrementally maintained state.
    groups: Vec<HashMap<Vec<ValueKey>, GroupState>>,
    outputs: OutputGroups,
}

impl SharedAggregate {
    /// Builds the shared aggregation.
    pub fn new(ctx: &MopContext) -> Result<Self> {
        let specs = extract_agg(ctx)?;
        let first = specs
            .first()
            .ok_or_else(|| RumorError::exec("empty aggregate m-op".to_string()))?;
        if specs.iter().any(|s| s.shared_key() != first.shared_key()) {
            return Err(RumorError::exec(
                "sα members must share function, input, and window".to_string(),
            ));
        }
        let in_position = ctx.members[0].input_positions[0];
        if ctx
            .members
            .iter()
            .any(|m| m.input_positions[0] != in_position)
        {
            return Err(RumorError::exec(
                "sα members must read the same stream".to_string(),
            ));
        }
        Ok(SharedAggregate {
            window_len: first.window,
            groups: vec![HashMap::new(); specs.len()],
            specs,
            in_position,
            window: VecDeque::new(),
            outputs: OutputGroups::new(&ctx.members),
        })
    }

    fn evict(&mut self, now: Timestamp) {
        while let Some((ts, _, _)) = self.window.front() {
            if now.saturating_sub(self.window_len) > *ts || self.window_len == 0 {
                let (_, tuple, v) = self.window.pop_front().expect("checked front");
                for (spec, groups) in self.specs.iter().zip(self.groups.iter_mut()) {
                    let key = group_key(&tuple, &spec.group_by);
                    if let Some(g) = groups.get_mut(&key) {
                        g.remove(&v);
                        if g.is_empty() {
                            groups.remove(&key);
                        }
                    }
                }
            } else {
                break;
            }
        }
    }
}

impl MultiOp for SharedAggregate {
    fn process(&mut self, _port: PortId, input: &ChannelTuple, out: &mut dyn Emit) {
        if !input.belongs_to(self.in_position) {
            return;
        }
        let tuple = &input.tuple;
        self.evict(tuple.ts);
        // The input expression is evaluated once for all members.
        let v = self.specs[0].input.eval(&EvalCtx::unary(tuple));
        self.window.push_back((tuple.ts, tuple.clone(), v.clone()));
        for (idx, (spec, groups)) in self.specs.iter().zip(self.groups.iter_mut()).enumerate() {
            let key = group_key(tuple, &spec.group_by);
            let g = groups.entry(key).or_default();
            g.add(&v);
            let row = output_row(tuple, &spec.group_by, g.result(spec.func));
            self.outputs.emit_one(out, row, idx);
        }
    }

    fn process_batch_keyed(&mut self, _port: PortId, inputs: &[ChannelTuple], out: &mut dyn Emit) {
        // Unlike the sequence's GC-only horizon, aggregate eviction is
        // *destructive*: which tuples have been evicted at each event's ts
        // determines the emitted value, so the run cannot be regrouped by
        // key — it is walked in arrival order. The batch win is allocation
        // amortization instead: group keys are built into one reusable
        // scratch buffer and only materialized when a group is first
        // touched (the hot existing-group path allocates nothing).
        let mut key_buf: Vec<ValueKey> = Vec::new();
        for input in inputs {
            if !input.belongs_to(self.in_position) {
                continue;
            }
            let tuple = &input.tuple;
            self.evict(tuple.ts);
            let v = self.specs[0].input.eval(&EvalCtx::unary(tuple));
            self.window.push_back((tuple.ts, tuple.clone(), v.clone()));
            for (idx, (spec, groups)) in self.specs.iter().zip(self.groups.iter_mut()).enumerate() {
                key_buf.clear();
                for &i in &spec.group_by {
                    key_buf.push(tuple.value(i).cloned().unwrap_or(Value::Null).group_key());
                }
                if !groups.contains_key(key_buf.as_slice()) {
                    groups.insert(key_buf.clone(), GroupState::default());
                }
                let g = groups.get_mut(key_buf.as_slice()).expect("just ensured");
                g.add(&v);
                let row = output_row(tuple, &spec.group_by, g.result(spec.func));
                self.outputs.emit_one(out, row, idx);
            }
        }
    }

    fn partition_keys(&self) -> rumor_core::PartitionKeys {
        // A group's state depends only on the tuples of that group (the
        // shared window buffer is per-group at eviction time, and eviction
        // is a pure ts horizon), so any hash key that every member's
        // group-by refines keeps each group whole: report the intersection
        // of the members' group-by attribute sets.
        let mut common: Vec<usize> = self.specs[0].group_by.clone();
        common.sort_unstable();
        common.dedup();
        for spec in &self.specs[1..] {
            common.retain(|a| spec.group_by.contains(a));
        }
        if common.is_empty() {
            rumor_core::PartitionKeys::Opaque
        } else {
            rumor_core::PartitionKeys::Grouped { group_by: common }
        }
    }

    fn port_batch_safe(&self) -> bool {
        // Single input port: its channel is always delivered in timestamp
        // order, so port grouping cannot reorder anything this op sees.
        true
    }

    fn state_size(&self) -> usize {
        self.window.len() + self.groups.iter().map(HashMap::len).sum::<usize>()
    }

    fn name(&self) -> &'static str {
        "shared-aggregate"
    }
}

/// Shared fragment aggregation over a channel (rule cα).
pub struct FragmentAggregate {
    spec: AggSpec,
    in_positions: Vec<usize>,
    window: VecDeque<(Timestamp, Tuple, Value, Membership)>,
    /// group key → fragments: (membership, partial state).
    fragments: HashMap<Vec<ValueKey>, Vec<(Membership, GroupState)>>,
    outputs: OutputGroups,
}

impl FragmentAggregate {
    /// Builds the fragment aggregation.
    pub fn new(ctx: &MopContext) -> Result<Self> {
        let specs = extract_agg(ctx)?;
        let first = specs
            .first()
            .ok_or_else(|| RumorError::exec("empty aggregate m-op".to_string()))?
            .clone();
        if specs.iter().any(|s| *s != first) {
            return Err(RumorError::exec(
                "cα members must have identical definitions".to_string(),
            ));
        }
        Ok(FragmentAggregate {
            spec: first,
            in_positions: ctx.members.iter().map(|m| m.input_positions[0]).collect(),
            window: VecDeque::new(),
            fragments: HashMap::new(),
            outputs: OutputGroups::new(&ctx.members),
        })
    }

    fn evict(&mut self, now: Timestamp) {
        while let Some((ts, _, _, _)) = self.window.front() {
            if now.saturating_sub(self.spec.window) > *ts || self.spec.window == 0 {
                let (_, tuple, v, membership) = self.window.pop_front().expect("checked front");
                let key = group_key(&tuple, &self.spec.group_by);
                if let Some(frags) = self.fragments.get_mut(&key) {
                    if let Some((_, g)) = frags.iter_mut().find(|(m, _)| *m == membership) {
                        g.remove(&v);
                    }
                    frags.retain(|(_, g)| !g.is_empty());
                    if frags.is_empty() {
                        self.fragments.remove(&key);
                    }
                }
            } else {
                break;
            }
        }
    }

    /// Current number of fragments for diagnostics.
    pub fn fragment_count(&self) -> usize {
        self.fragments.values().map(|v| v.len()).sum()
    }
}

impl MultiOp for FragmentAggregate {
    fn process(&mut self, _port: PortId, input: &ChannelTuple, out: &mut dyn Emit) {
        // Restrict the membership to the streams our members actually read.
        let mut relevant: Vec<usize> = Vec::new();
        for (m, &pos) in self.in_positions.iter().enumerate() {
            if input.belongs_to(pos) {
                relevant.push(m);
            }
        }
        if relevant.is_empty() {
            return;
        }
        let tuple = &input.tuple;
        self.evict(tuple.ts);
        let v = self.spec.input.eval(&EvalCtx::unary(tuple));
        let key = group_key(tuple, &self.spec.group_by);
        // Fold the tuple into its (group, fragment) partial exactly once —
        // this is the space and computation sharing of [15].
        let frags = self.fragments.entry(key.clone()).or_default();
        match frags.iter_mut().find(|(m, _)| *m == input.membership) {
            Some((_, g)) => g.add(&v),
            None => {
                let mut g = GroupState::new();
                g.add(&v);
                frags.push((input.membership.clone(), g));
            }
        }
        self.window
            .push_back((tuple.ts, tuple.clone(), v, input.membership.clone()));

        // Emit the refreshed aggregate for each member that received the
        // tuple, grouping members with equal results into one channel tuple.
        let frags = &self.fragments[&key];
        let mut by_result: Vec<(ValueKey, Value, Vec<usize>)> = Vec::new();
        for &m in &relevant {
            let pos = self.in_positions[m];
            let mut combined = GroupState::new();
            for (membership, g) in frags {
                if membership.contains(pos) {
                    combined.merge_from(g);
                }
            }
            let result = combined.result(self.spec.func);
            let rk = result.group_key();
            match by_result.iter_mut().find(|(k, _, _)| *k == rk) {
                Some((_, _, members)) => members.push(m),
                None => by_result.push((rk, result, vec![m])),
            }
        }
        for (_, result, members) in by_result {
            let row = output_row(tuple, &self.spec.group_by, result);
            self.outputs.emit_members(out, &row, &members);
        }
    }

    fn partition_keys(&self) -> rumor_core::PartitionKeys {
        if self.spec.group_by.is_empty() {
            rumor_core::PartitionKeys::Opaque
        } else {
            let mut group_by = self.spec.group_by.clone();
            group_by.sort_unstable();
            group_by.dedup();
            rumor_core::PartitionKeys::Grouped { group_by }
        }
    }

    fn port_batch_safe(&self) -> bool {
        // Single input port, same argument as the shared aggregate.
        true
    }

    fn state_size(&self) -> usize {
        self.window.len() + self.fragment_count()
    }

    fn name(&self) -> &'static str {
        "fragment-aggregate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::logical::{AggFunc, OpDef};
    use rumor_core::{MopKind, PlanGraph, VecEmit};
    use rumor_expr::{Expr, Predicate};
    use rumor_types::Schema;

    fn spec(func: AggFunc, group_by: Vec<usize>, window: u64) -> AggSpec {
        AggSpec {
            func,
            input: Expr::col(1),
            group_by,
            window,
        }
    }

    #[test]
    fn shared_aggregate_two_group_bys() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(3), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let (a, _) = p
            .add_op(OpDef::Aggregate(spec(AggFunc::Sum, vec![0], 10)), vec![s])
            .unwrap();
        let (b, _) = p
            .add_op(OpDef::Aggregate(spec(AggFunc::Sum, vec![], 10)), vec![s])
            .unwrap();
        let merged = p.merge_mops(&[a, b], MopKind::SharedAggregate).unwrap();
        let ctx = MopContext::build(&p, merged).unwrap();
        let mut op = SharedAggregate::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[7, 10, 0])),
            &mut sink,
        );
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(1, &[8, 5, 0])),
            &mut sink,
        );
        // Member 0 groups by a0: sums 10 then 5. Member 1 has no group-by:
        // sums 10 then 15.
        assert_eq!(sink.out.len(), 4);
        assert_eq!(sink.out[0].1, Tuple::ints(0, &[7, 10]));
        assert_eq!(sink.out[1].1, Tuple::ints(0, &[10]));
        assert_eq!(sink.out[2].1, Tuple::ints(1, &[8, 5]));
        assert_eq!(sink.out[3].1, Tuple::ints(1, &[15]));
    }

    #[test]
    fn shared_aggregate_eviction() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let (a, _) = p
            .add_op(OpDef::Aggregate(spec(AggFunc::Sum, vec![], 2)), vec![s])
            .unwrap();
        let ctx = MopContext::build(&p, a).unwrap();
        let mut op = SharedAggregate::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        for (ts, v) in [(0, 10), (1, 20), (4, 5)] {
            op.process(
                PortId::LEFT,
                &ChannelTuple::solo(Tuple::ints(ts, &[0, v])),
                &mut sink,
            );
        }
        // At ts=4 both earlier tuples expired.
        assert_eq!(sink.out[2].1, Tuple::ints(4, &[5]));
    }

    fn fragment_setup(n: usize) -> (PlanGraph, MopContext) {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(3), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let mut ups = Vec::new();
        let mut outs = Vec::new();
        for i in 0..n {
            let (id, o) = p
                .add_op(
                    OpDef::Select(Predicate::attr_eq_const(2, i as i64)),
                    vec![s],
                )
                .unwrap();
            ups.push(id);
            outs.push(o);
        }
        p.merge_mops(&ups, MopKind::IndexedSelect).unwrap();
        let aggs: Vec<_> = outs
            .iter()
            .map(|&o| {
                p.add_op(OpDef::Aggregate(spec(AggFunc::Sum, vec![], 10)), vec![o])
                    .unwrap()
                    .0
            })
            .collect();
        p.encode_channel(&outs).unwrap();
        let merged = p.merge_mops(&aggs, MopKind::FragmentAggregate).unwrap();
        let down_outs: Vec<_> = p.mop(merged).output_streams().collect();
        p.encode_channel(&down_outs).unwrap();
        let ctx = MopContext::build(&p, merged).unwrap();
        (p, ctx)
    }

    #[test]
    fn fragment_aggregate_shares_common_tuples() {
        let (_, ctx) = fragment_setup(3);
        let mut op = FragmentAggregate::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        // Tuple belongs to all three streams: one fragment, one emission.
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(0, &[0, 10, 0]), Membership::all(3)),
            &mut sink,
        );
        assert_eq!(op.fragment_count(), 1);
        assert_eq!(sink.out.len(), 1, "equal results grouped");
        assert_eq!(sink.out[0].2, Membership::all(3));
        assert_eq!(sink.out[0].1.value(0), Some(&Value::Int(10)));

        // Tuple belonging only to stream 1: results now diverge.
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(1, &[0, 5, 0]), Membership::singleton(1)),
            &mut sink,
        );
        assert_eq!(op.fragment_count(), 2);
        // Member 1 sees 15, but members 0 and 2 did not receive this tuple,
        // so only member 1 emits.
        assert_eq!(sink.out.len(), 2);
        assert_eq!(sink.out[1].1.value(0), Some(&Value::Int(15)));
        assert_eq!(sink.out[1].2, Membership::singleton(1));

        // A third tuple on all streams: member 1 = 10+5+10 = 25,
        // members 0/2 = 10+10 = 20.
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(2, &[0, 10, 0]), Membership::all(3)),
            &mut sink,
        );
        let last_two = &sink.out[2..];
        assert_eq!(last_two.len(), 2);
        let m1 = last_two
            .iter()
            .find(|(_, _, m)| *m == Membership::singleton(1))
            .unwrap();
        assert_eq!(m1.1.value(0), Some(&Value::Int(25)));
        let m02 = last_two
            .iter()
            .find(|(_, _, m)| *m == Membership::from_indices([0, 2]))
            .unwrap();
        assert_eq!(m02.1.value(0), Some(&Value::Int(20)));
    }

    #[test]
    fn fragment_aggregate_eviction() {
        let (_, ctx) = fragment_setup(2);
        let mut op = FragmentAggregate::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(0, &[0, 10, 0]), Membership::all(2)),
            &mut sink,
        );
        // Window is 10; at ts=20 the first tuple is gone.
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(20, &[0, 1, 0]), Membership::all(2)),
            &mut sink,
        );
        assert_eq!(op.fragment_count(), 1);
        assert_eq!(sink.out[1].1.value(0), Some(&Value::Int(1)));
    }
}
