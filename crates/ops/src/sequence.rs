//! The Cayuga sequence operator `;` as a shared m-op.
//!
//! [`SharedSequence`] covers three rule targets:
//!
//! * rule s; — `;` operators with the same predicate over the same stream
//!   pair (CSE; members may differ in duration window, generalizing the
//!   shared-window-state idea of \[12\] to sequences);
//! * the **AI index** (§4.3): stored instances are hash-indexed by the
//!   equi-join conjuncts of the predicate (`S.a\[0\] = T.a\[0\]` in Workload 2),
//!   so an arriving event probes a bucket instead of scanning all
//!   instances;
//! * rule c; (§4.4): constructed with [`SharedSequence::new_channel`], the
//!   left input is a channel and each stored instance carries its
//!   membership, which propagates to the outputs.
//!
//! Deletion semantics: a matched instance is deleted (§5.2). With
//! per-member windows this is still exact: a match at age `dt` is consumed
//! by every member whose window covers `dt`, and members with smaller
//! windows had already expired the instance.

use std::collections::{HashMap, VecDeque};

use rumor_core::logical::SeqSpec;
use rumor_core::{ChannelTuple, Emit, MopContext, MultiOp};
use rumor_expr::{EvalCtx, Predicate};
use rumor_types::{Membership, PortId, Result, RumorError, Timestamp, Tuple, ValueKey};

use crate::emitgroup::OutputGroups;
use crate::single::concat_with_ts;

fn extract_seq(ctx: &MopContext) -> Result<Vec<SeqSpec>> {
    ctx.members
        .iter()
        .map(|m| match &m.def {
            rumor_core::OpDef::Sequence(spec) => Ok(spec.clone()),
            other => Err(RumorError::exec(format!(
                "sequence m-op given non-sequence member {other}"
            ))),
        })
        .collect()
}

struct Slot {
    gen: u32,
    alive: bool,
    start_ts: Timestamp,
    tuple: Tuple,
    membership: Membership,
}

/// Generation-validated instance store with FIFO expiry and an optional
/// hash index (the AI index) over the predicate's equi-join key.
struct InstanceStore {
    slots: Vec<Slot>,
    free: Vec<u32>,
    fifo: VecDeque<(u32, u32)>,
    buckets: HashMap<Vec<ValueKey>, Vec<(u32, u32)>>,
    keyed: bool,
    live: usize,
}

impl InstanceStore {
    fn new(keyed: bool) -> Self {
        InstanceStore {
            slots: Vec::new(),
            free: Vec::new(),
            fifo: VecDeque::new(),
            buckets: HashMap::new(),
            keyed,
            live: 0,
        }
    }

    fn valid(&self, slot: u32, gen: u32) -> bool {
        let s = &self.slots[slot as usize];
        s.gen == gen && s.alive
    }

    fn insert(
        &mut self,
        start_ts: Timestamp,
        tuple: Tuple,
        membership: Membership,
        key: Vec<ValueKey>,
    ) {
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.alive = true;
                s.start_ts = start_ts;
                s.tuple = tuple;
                s.membership = membership;
                slot
            }
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    alive: true,
                    start_ts,
                    tuple,
                    membership,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.fifo.push_back((slot, gen));
        if self.keyed {
            self.buckets.entry(key).or_default().push((slot, gen));
        }
        self.live += 1;
    }

    fn kill(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        if s.alive {
            s.alive = false;
            self.live -= 1;
        }
    }

    /// Pops expired and dead instances from the FIFO front. Instances are
    /// inserted in timestamp order, so the front is always the oldest.
    fn evict(&mut self, horizon: Timestamp) {
        while let Some(&(slot, gen)) = self.fifo.front() {
            let s = &self.slots[slot as usize];
            let stale = s.gen != gen || !s.alive;
            if stale || s.start_ts < horizon {
                self.fifo.pop_front();
                if !stale {
                    self.kill(slot);
                }
                let s = &mut self.slots[slot as usize];
                s.gen = s.gen.wrapping_add(1);
                self.free.push(slot);
            } else {
                break;
            }
        }
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// Shared `;` m-op (rules s; and c;).
pub struct SharedSequence {
    /// Whether the AI index is active (keys non-empty).
    keyed: bool,
    /// Equi-key attribute pairs (instance attr, event attr) — the AI index.
    keys: Vec<(usize, usize)>,
    residual: Predicate,
    /// `(window, member)` sorted descending for window-routing (s; mode).
    members_by_window: Vec<(u64, usize)>,
    max_window: u64,
    /// Channel mode: memberships route outputs instead of windows.
    channel_mode: bool,
    /// Per member: position of its left stream in the left channel.
    left_positions: Vec<usize>,
    right_position: usize,
    store: InstanceStore,
    outputs: OutputGroups,
    satisfied: Vec<usize>,
    /// Channel-mode fast path: member windows sorted descending, the
    /// cumulative out-position mask of each prefix of `members_by_window`,
    /// and the out-position mask of the members reading each left-channel
    /// position. A match at age `dt` then emits
    /// `union(pos_masks[instance membership]) ∩ prefix_masks[k]` where `k`
    /// counts members whose window covers `dt` — O(bit-words), independent
    /// of the member count (§5.3: "the amount of work ... remains the
    /// same, regardless of how many stream tuples t encodes").
    windows_desc: Vec<u64>,
    prefix_masks: Vec<Membership>,
    pos_out_masks: Vec<Membership>,
}

impl SharedSequence {
    /// Builds the s; implementation (plain left stream, per-member windows).
    pub fn new(ctx: &MopContext) -> Result<Self> {
        Self::build(ctx, false)
    }

    /// Builds the c; implementation (left channel with memberships).
    pub fn new_channel(ctx: &MopContext) -> Result<Self> {
        Self::build(ctx, true)
    }

    fn build(ctx: &MopContext, channel_mode: bool) -> Result<Self> {
        let specs = extract_seq(ctx)?;
        let first = specs
            .first()
            .ok_or_else(|| RumorError::exec("empty sequence m-op".to_string()))?;
        if specs.iter().any(|s| s.predicate != first.predicate) {
            return Err(RumorError::exec(
                "sequence m-op members must share the predicate".to_string(),
            ));
        }
        if !channel_mode {
            let p0 = ctx.members[0].input_positions[0];
            if ctx.members.iter().any(|m| m.input_positions[0] != p0) {
                return Err(RumorError::exec(
                    "s; members must read the same left stream".to_string(),
                ));
            }
        }
        let (keys, residual) = first.predicate.split_equi_join();
        let mut members_by_window: Vec<(u64, usize)> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.window, i))
            .collect();
        members_by_window.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let max_window = members_by_window.first().map(|&(w, _)| w).unwrap_or(0);
        let outputs = OutputGroups::new(&ctx.members);
        let left_positions: Vec<usize> = ctx.members.iter().map(|m| m.input_positions[0]).collect();
        let (windows_desc, prefix_masks, pos_out_masks) =
            if channel_mode && outputs.uniform_channel().is_some() {
                let windows_desc: Vec<u64> = members_by_window.iter().map(|&(w, _)| w).collect();
                let mut prefix_masks = Vec::with_capacity(members_by_window.len() + 1);
                let mut acc = Membership::empty();
                prefix_masks.push(acc.clone());
                for &(_, m) in &members_by_window {
                    acc.insert(outputs.position_of(m));
                    prefix_masks.push(acc.clone());
                }
                let max_pos = left_positions.iter().copied().max().unwrap_or(0);
                let mut pos_out_masks = vec![Membership::empty(); max_pos + 1];
                for (m, &pos) in left_positions.iter().enumerate() {
                    pos_out_masks[pos].insert(outputs.position_of(m));
                }
                (windows_desc, prefix_masks, pos_out_masks)
            } else {
                (Vec::new(), Vec::new(), Vec::new())
            };
        Ok(SharedSequence {
            keyed: !keys.is_empty(),
            keys,
            residual,
            members_by_window,
            max_window,
            channel_mode,
            left_positions,
            right_position: ctx.members[0].input_positions[1],
            store: InstanceStore::new(false),
            outputs,
            satisfied: Vec::new(),
            windows_desc,
            prefix_masks,
            pos_out_masks,
        }
        .finish())
    }

    fn finish(mut self) -> Self {
        self.store = InstanceStore::new(self.keyed);
        self
    }

    /// Number of live stored instances (diagnostics / tests).
    pub fn instance_count(&self) -> usize {
        self.store.len()
    }

    /// Whether the AI index is active.
    pub fn is_indexed(&self) -> bool {
        self.keyed
    }

    fn instance_key(&self, tuple: &Tuple) -> Vec<ValueKey> {
        self.keys
            .iter()
            .map(|&(l, _)| {
                tuple
                    .value(l)
                    .cloned()
                    .unwrap_or(rumor_types::Value::Null)
                    .group_key()
            })
            .collect()
    }

    fn event_key(&self, tuple: &Tuple) -> Vec<ValueKey> {
        self.keys
            .iter()
            .map(|&(_, r)| {
                tuple
                    .value(r)
                    .cloned()
                    .unwrap_or(rumor_types::Value::Null)
                    .group_key()
            })
            .collect()
    }

    fn emit_match(
        &mut self,
        out: &mut dyn Emit,
        inst_tuple: &Tuple,
        inst_membership: &Membership,
        event: &Tuple,
        dt: u64,
    ) {
        let row = concat_with_ts(inst_tuple, event, event.ts);
        if self.channel_mode {
            // Membership routing intersected with per-member window
            // coverage: a member whose window is smaller than the match age
            // had already expired its copy of the instance.
            if !self.prefix_masks.is_empty() {
                // Fast path: prefix mask of window-eligible members ∩ the
                // instance's out-mapped membership.
                let k = self.windows_desc.partition_point(|&w| w >= dt);
                let mut mapped = Membership::empty();
                for pos in inst_membership.iter() {
                    if let Some(mask) = self.pos_out_masks.get(pos) {
                        mapped = mapped.union(mask);
                    }
                }
                let emitted = mapped.intersect(&self.prefix_masks[k]);
                if !emitted.is_empty() {
                    self.outputs.emit_premapped(out, row, emitted);
                }
                return;
            }
            self.satisfied.clear();
            for &(window, m) in &self.members_by_window {
                if window < dt {
                    break;
                }
                if inst_membership.contains(self.left_positions[m]) {
                    self.satisfied.push(m);
                }
            }
            self.satisfied.sort_unstable();
            let satisfied = std::mem::take(&mut self.satisfied);
            self.outputs.emit_members(out, &row, &satisfied);
            self.satisfied = satisfied;
        } else {
            for &(window, member) in &self.members_by_window {
                if window < dt {
                    break;
                }
                self.outputs.emit_one(out, row.clone(), member);
            }
        }
    }

    /// Probes one key bucket's entries with `event`: emits and deletes
    /// matches, drops stale entries in place. Shared by the per-event path
    /// and the per-key sub-batch path.
    fn probe_entries(&mut self, entries: &mut Vec<(u32, u32)>, event: &Tuple, out: &mut dyn Emit) {
        let mut i = 0;
        while i < entries.len() {
            let (slot, gen) = entries[i];
            if !self.store.valid(slot, gen) {
                entries.remove(i);
                continue;
            }
            let (start_ts, matched, tuple, membership) = {
                let s = &self.store.slots[slot as usize];
                let in_window = s.start_ts < event.ts && event.ts - s.start_ts <= self.max_window;
                let matched = in_window && self.residual.eval(&EvalCtx::binary(&s.tuple, event));
                (s.start_ts, matched, s.tuple.clone(), s.membership.clone())
            };
            if matched {
                let dt = event.ts - start_ts;
                self.emit_match(out, &tuple, &membership, event, dt);
                self.store.kill(slot);
                entries.remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn process_event(&mut self, event: &Tuple, out: &mut dyn Emit) {
        let horizon = event.ts.saturating_sub(self.max_window);
        self.store.evict(horizon);
        if self.keyed {
            let key = self.event_key(event);
            let Some(mut entries) = self.store.buckets.remove(&key) else {
                return;
            };
            self.probe_entries(&mut entries, event, out);
            if !entries.is_empty() {
                self.store.buckets.insert(key, entries);
            }
        } else {
            // Unindexed predicate: scan instances in insertion order.
            for idx in 0..self.store.fifo.len() {
                let (slot, gen) = self.store.fifo[idx];
                if !self.store.valid(slot, gen) {
                    continue;
                }
                let (start_ts, matched, tuple, membership) = {
                    let s = &self.store.slots[slot as usize];
                    let in_window =
                        s.start_ts < event.ts && event.ts - s.start_ts <= self.max_window;
                    let matched =
                        in_window && self.residual.eval(&EvalCtx::binary(&s.tuple, event));
                    (s.start_ts, matched, s.tuple.clone(), s.membership.clone())
                };
                if matched {
                    let dt = event.ts - start_ts;
                    self.emit_match(out, &tuple, &membership, event, dt);
                    self.store.kill(slot);
                }
            }
        }
    }
}

impl MultiOp for SharedSequence {
    fn process(&mut self, port: PortId, input: &ChannelTuple, out: &mut dyn Emit) {
        if port.index() == 0 {
            // Instance arrival.
            if self.channel_mode {
                let relevant = self.left_positions.iter().any(|&pos| input.belongs_to(pos));
                if !relevant {
                    return;
                }
            } else if !input.belongs_to(self.left_positions[0]) {
                return;
            }
            self.store
                .evict(input.tuple.ts.saturating_sub(self.max_window));
            let key = self.instance_key(&input.tuple);
            self.store.insert(
                input.tuple.ts,
                input.tuple.clone(),
                input.membership.clone(),
                key,
            );
        } else {
            if !input.belongs_to(self.right_position) {
                return;
            }
            let event = input.tuple.clone();
            self.process_event(&event, out);
        }
    }

    fn process_batch_keyed(&mut self, port: PortId, inputs: &[ChannelTuple], out: &mut dyn Emit) {
        if port.index() == 0 {
            // Instance arrivals: evict once at the run's first (minimal)
            // timestamp, then insert in order. Eviction is a pure GC
            // horizon (the match-time window guard is what enforces
            // semantics), so deferring later horizons within one run only
            // delays reclamation, never changes output.
            let mut evicted = false;
            for input in inputs {
                let relevant = if self.channel_mode {
                    self.left_positions.iter().any(|&pos| input.belongs_to(pos))
                } else {
                    input.belongs_to(self.left_positions[0])
                };
                if !relevant {
                    continue;
                }
                if !evicted {
                    self.store
                        .evict(input.tuple.ts.saturating_sub(self.max_window));
                    evicted = true;
                }
                let key = self.instance_key(&input.tuple);
                self.store.insert(
                    input.tuple.ts,
                    input.tuple.clone(),
                    input.membership.clone(),
                    key,
                );
            }
        } else if self.keyed {
            // AI-indexed events: group the ts-ordered run by key once and
            // probe each key's bucket with its whole sub-batch — one hash
            // removal/re-insertion per distinct key per run instead of one
            // per event. Buckets are disjoint, matches are window-guarded
            // pairwise, and eviction is a pure GC horizon, so inter-key
            // reordering cannot change the match set; emissions carry
            // their event's ts and the engine re-sorts them (the
            // `process_batch_keyed` contract).
            let events: Vec<&Tuple> = inputs
                .iter()
                .filter(|ct| ct.belongs_to(self.right_position))
                .map(|ct| &ct.tuple)
                .collect();
            let Some(first) = events.first() else {
                return;
            };
            self.store.evict(first.ts.saturating_sub(self.max_window));
            let mut order: Vec<Vec<ValueKey>> = Vec::new();
            let mut groups: HashMap<Vec<ValueKey>, Vec<u32>> = HashMap::new();
            for (i, e) in events.iter().enumerate() {
                let key = self.event_key(e);
                match groups.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        o.get_mut().push(i as u32)
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        order.push(v.key().clone());
                        v.insert(vec![i as u32]);
                    }
                }
            }
            for key in order {
                let idxs = groups.remove(&key).expect("grouped key listed once");
                let Some(mut entries) = self.store.buckets.remove(&key) else {
                    continue;
                };
                for &i in &idxs {
                    self.probe_entries(&mut entries, events[i as usize], out);
                    if entries.is_empty() {
                        break;
                    }
                }
                if !entries.is_empty() {
                    self.store.buckets.insert(key, entries);
                }
            }
        } else {
            for input in inputs {
                self.process(port, input, out);
            }
        }
    }

    fn partition_keys(&self) -> rumor_core::PartitionKeys {
        // With the AI index active an event only probes (and deletes)
        // instances of its own key, matches are window-guarded pairwise,
        // and eviction is a pure ts horizon — exact under hash partitioning
        // on the equi key. An unindexed sequence scans every instance per
        // event, so any tuple pair can interact: opaque.
        if self.keyed {
            let (l, r): (Vec<usize>, Vec<usize>) = self.keys.iter().copied().unzip();
            rumor_core::PartitionKeys::Equi {
                per_port: vec![l, r],
            }
        } else {
            rumor_core::PartitionKeys::Opaque
        }
    }

    fn port_batch_safe(&self) -> bool {
        // Port 0 only writes (instance arrivals read nothing); port 1
        // guards every match with `start_ts < event.ts` plus the window
        // bound, and eviction is a pure GC horizon — so probes observe the
        // per-event state even when same-batch future instances were
        // inserted early.
        true
    }

    fn state_size(&self) -> usize {
        self.store.len()
    }

    fn name(&self) -> &'static str {
        if self.channel_mode {
            "channel-sequence"
        } else {
            "shared-sequence"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::logical::OpDef;
    use rumor_core::{MopKind, PlanGraph, VecEmit};
    use rumor_expr::{CmpOp, Expr};
    use rumor_types::Schema;

    fn equi_spec(window: u64) -> SeqSpec {
        SeqSpec {
            predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            window,
        }
    }

    fn shared_ctx(windows: &[u64]) -> MopContext {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let t = p.source_by_name("T").unwrap().stream;
        let ids: Vec<_> = windows
            .iter()
            .map(|&w| {
                p.add_op(OpDef::Sequence(equi_spec(w)), vec![s, t])
                    .unwrap()
                    .0
            })
            .collect();
        let merged = p.merge_mops(&ids, MopKind::SharedSequence).unwrap();
        MopContext::build(&p, merged).unwrap()
    }

    #[test]
    fn ai_index_is_used_for_equi_predicates() {
        let ctx = shared_ctx(&[10]);
        let op = SharedSequence::new(&ctx).unwrap();
        assert!(op.is_indexed());
    }

    #[test]
    fn match_emits_and_deletes() {
        let ctx = shared_ctx(&[10]);
        let mut op = SharedSequence::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[7, 1])),
            &mut sink,
        );
        assert_eq!(op.instance_count(), 1);
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(1, &[7, 2])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1);
        assert_eq!(sink.out[0].1, Tuple::ints(1, &[7, 1, 7, 2]));
        assert_eq!(op.instance_count(), 0, "matched instance deleted");
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(2, &[7, 3])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1, "no instance left to match");
    }

    #[test]
    fn per_member_window_routing() {
        let ctx = shared_ctx(&[2, 10]);
        let mut op = SharedSequence::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[7, 1])),
            &mut sink,
        );
        // dt = 5: only the window-10 member emits; the instance is deleted.
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(5, &[7, 2])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1);
        assert_eq!(sink.out[0].0, ctx.members[1].out_channel);
    }

    #[test]
    fn expiry_frees_instances() {
        let ctx = shared_ctx(&[3]);
        let mut op = SharedSequence::new(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[7, 1])),
            &mut sink,
        );
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(10, &[7, 2])),
            &mut sink,
        );
        assert!(sink.out.is_empty());
        assert_eq!(op.instance_count(), 0);
    }

    #[test]
    fn non_equi_predicate_scans() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let t = p.source_by_name("T").unwrap().stream;
        let spec = SeqSpec {
            predicate: Predicate::cmp(CmpOp::Lt, Expr::col(0), Expr::rcol(0)),
            window: 10,
        };
        let (id, _) = p.add_op(OpDef::Sequence(spec), vec![s, t]).unwrap();
        let ctx = MopContext::build(&p, id).unwrap();
        let mut op = SharedSequence::new(&ctx).unwrap();
        assert!(!op.is_indexed());
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(0, &[3, 0])),
            &mut sink,
        );
        op.process(
            PortId::LEFT,
            &ChannelTuple::solo(Tuple::ints(1, &[9, 0])),
            &mut sink,
        );
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(2, &[5, 0])),
            &mut sink,
        );
        // Only the instance with a0=3 < 5 matches (and is deleted).
        assert_eq!(sink.out.len(), 1);
        assert_eq!(op.instance_count(), 1);
    }

    #[test]
    fn batch_keyed_matches_per_event_after_ts_sort() {
        // Interleaved keys: per-key grouping visits key 7 fully before
        // key 8, but a stable ts-sort of the emissions must reproduce the
        // per-event sequence exactly (the process_batch_keyed contract).
        let ctx = shared_ctx(&[10]);
        let mut batched = SharedSequence::new(&ctx).unwrap();
        let mut reference = SharedSequence::new(&ctx).unwrap();
        let inserts: Vec<ChannelTuple> = [(0u64, 7i64), (1, 8), (2, 7), (3, 8)]
            .iter()
            .map(|&(ts, k)| ChannelTuple::solo(Tuple::ints(ts, &[k, 0])))
            .collect();
        let events: Vec<ChannelTuple> = [(4u64, 8i64), (5, 7), (6, 8), (7, 7), (8, 9)]
            .iter()
            .map(|&(ts, k)| ChannelTuple::solo(Tuple::ints(ts, &[k, 1])))
            .collect();
        let mut got = VecEmit::default();
        batched.process_batch_keyed(PortId::LEFT, &inserts, &mut got);
        batched.process_batch_keyed(PortId::RIGHT, &events, &mut got);
        let mut want = VecEmit::default();
        for ct in inserts.iter().chain(events.iter()) {
            let port = if ct.tuple.value(1) == Some(&rumor_types::Value::Int(0)) {
                PortId::LEFT
            } else {
                PortId::RIGHT
            };
            reference.process(port, ct, &mut want);
        }
        got.out.sort_by_key(|(_, t, _)| t.ts);
        assert_eq!(got.out, want.out);
        assert_eq!(batched.instance_count(), reference.instance_count());
    }

    fn channel_ctx(n: usize) -> (PlanGraph, MopContext) {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let t = p.source_by_name("T").unwrap().stream;
        let mut ups = Vec::new();
        let mut outs = Vec::new();
        for i in 0..n {
            let (id, o) = p
                .add_op(
                    OpDef::Select(Predicate::attr_eq_const(1, i as i64)),
                    vec![s],
                )
                .unwrap();
            ups.push(id);
            outs.push(o);
        }
        p.merge_mops(&ups, MopKind::IndexedSelect).unwrap();
        let seqs: Vec<_> = outs
            .iter()
            .map(|&o| {
                p.add_op(OpDef::Sequence(equi_spec(10)), vec![o, t])
                    .unwrap()
                    .0
            })
            .collect();
        p.encode_channel(&outs).unwrap();
        let merged = p.merge_mops(&seqs, MopKind::ChannelSequence).unwrap();
        let down_outs: Vec<_> = p.mop(merged).output_streams().collect();
        p.encode_channel(&down_outs).unwrap();
        let ctx = MopContext::build(&p, merged).unwrap();
        (p, ctx)
    }

    #[test]
    fn channel_mode_stores_once_and_routes_membership() {
        let (_, ctx) = channel_ctx(10);
        let mut op = SharedSequence::new_channel(&ctx).unwrap();
        let mut sink = VecEmit::default();
        // One channel tuple belonging to all 10 streams: ONE instance.
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(0, &[7, 0]), Membership::all(10)),
            &mut sink,
        );
        assert_eq!(op.instance_count(), 1);
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(1, &[7, 5])),
            &mut sink,
        );
        // One output channel tuple covering all 10 queries.
        assert_eq!(sink.out.len(), 1);
        assert_eq!(sink.out[0].2.len(), 10);
        assert_eq!(op.instance_count(), 0);
    }

    #[test]
    fn channel_mode_partial_membership() {
        let (_, ctx) = channel_ctx(4);
        let mut op = SharedSequence::new_channel(&ctx).unwrap();
        let mut sink = VecEmit::default();
        op.process(
            PortId::LEFT,
            &ChannelTuple::new(Tuple::ints(0, &[7, 0]), Membership::from_indices([1, 3])),
            &mut sink,
        );
        op.process(
            PortId::RIGHT,
            &ChannelTuple::solo(Tuple::ints(1, &[7, 5])),
            &mut sink,
        );
        assert_eq!(sink.out.len(), 1);
        assert_eq!(sink.out[0].2, Membership::from_indices([1, 3]));
    }
}
