//! Abstract syntax for the RUMOR query language.
//!
//! The AST is name-based (attribute references are unresolved identifiers);
//! [`crate::lower::Lowerer`] resolves them against stream schemas.

use rumor_core::AggFunc;
use rumor_expr::CmpOp;
use rumor_types::{Schema, Value};

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE STREAM name (field type, ...);`
    CreateStream {
        /// Stream name.
        name: String,
        /// Declared schema.
        schema: Schema,
        /// Optional `SHARABLE WITH 'label'` marker (§3.2 base case 2).
        sharable_label: Option<String>,
    },
    /// `DEFINE name AS <query>;` — a named derived stream.
    Define {
        /// Derived stream name.
        name: String,
        /// Defining query.
        query: QueryExpr,
    },
    /// A registered continuous query (optionally named).
    Register {
        /// Optional `QUERY name AS` prefix.
        name: Option<String>,
        /// The query.
        query: QueryExpr,
    },
    /// `DROP QUERY name;` — retire a named continuous query. Engines
    /// accept this while a runtime is live (the dynamic query lifecycle):
    /// the query's operators are pruned from the shared plan and running
    /// executors hot-swap to the pruned plan.
    DropQuery {
        /// The `QUERY name AS ...` name being retired.
        name: String,
    },
}

/// A query expression.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// `SELECT items FROM input [WHERE pred] [GROUP BY cols]`
    Select {
        /// Projection / aggregation list.
        items: Vec<SelectItem>,
        /// Input relation.
        input: StreamInput,
        /// Filter predicate.
        predicate: Option<ExprAst>,
        /// Group-by column names.
        group_by: Vec<String>,
    },
    /// `SELECT * FROM a JOIN b ON pred WITHIN n [WHERE pred]`
    Join {
        /// Left input.
        left: StreamInput,
        /// Right input.
        right: StreamInput,
        /// Join predicate.
        on: ExprAst,
        /// Window length.
        within: u64,
        /// Post-join filter.
        predicate: Option<ExprAst>,
    },
    /// `PATTERN a AS x [WHERE p] THEN b AS y [WHERE q] WITHIN n`
    Sequence {
        /// First (instance) input with alias.
        first: AliasedInput,
        /// Filter on the first input alone.
        first_where: Option<ExprAst>,
        /// Second (event) input with alias.
        second: AliasedInput,
        /// Pairwise predicate over both aliases.
        pair_where: Option<ExprAst>,
        /// Duration window.
        within: u64,
    },
    /// `PATTERN a AS x [WHERE p] THEN ITERATE b AS y [FILTER f] REBIND r
    ///  [SET col = expr, ...] WITHIN n`
    Iterate {
        /// First (instance) input with alias.
        first: AliasedInput,
        /// Filter on the first input alone.
        first_where: Option<ExprAst>,
        /// Event input with alias.
        second: AliasedInput,
        /// Filter-edge predicate θf.
        filter: Option<ExprAst>,
        /// Rebind-edge predicate θr.
        rebind: ExprAst,
        /// Rebind map updates: instance columns set from expressions over
        /// both aliases; unlisted columns keep their value.
        set: Vec<(String, ExprAst)>,
        /// Duration window.
        within: u64,
    },
}

/// A stream reference in FROM position.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInput {
    /// Referenced stream name (source or DEFINEd).
    pub name: String,
    /// Optional `[RANGE n]` window annotation (required for aggregation).
    pub range: Option<u64>,
    /// Optional alias.
    pub alias: Option<String>,
}

/// A stream reference with a mandatory alias (pattern queries).
#[derive(Debug, Clone, PartialEq)]
pub struct AliasedInput {
    /// Referenced stream name.
    pub name: String,
    /// Alias binding the tuple in predicates.
    pub alias: String,
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS name]`
    Expr {
        /// The expression.
        expr: ExprAst,
        /// Output name (defaults to a derived name).
        alias: Option<String>,
    },
    /// `FUNC(expr) [AS name]` / `COUNT(*)`
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Aggregated expression (`None` for `COUNT(*)`).
        expr: Option<ExprAst>,
        /// Output name.
        alias: Option<String>,
    },
}

/// Unresolved expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// Bare or qualified column reference (`load`, `x.load`).
    Column {
        /// Optional qualifier (stream alias).
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal.
    Lit(Value),
    /// Arithmetic.
    Arith {
        /// Operator symbol: `+ - * / %`.
        op: char,
        /// Left operand.
        lhs: Box<ExprAst>,
        /// Right operand.
        rhs: Box<ExprAst>,
    },
    /// Unary negation.
    Neg(Box<ExprAst>),
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<ExprAst>,
        /// Right operand.
        rhs: Box<ExprAst>,
    },
    /// Conjunction.
    And(Vec<ExprAst>),
    /// Disjunction.
    Or(Vec<ExprAst>),
    /// Negation.
    Not(Box<ExprAst>),
    /// `TRUE` / `FALSE`.
    Bool(bool),
}

impl ExprAst {
    /// Column shorthand.
    pub fn col(name: &str) -> ExprAst {
        ExprAst::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Qualified column shorthand.
    pub fn qcol(qualifier: &str, name: &str) -> ExprAst {
        ExprAst::Column {
            qualifier: Some(qualifier.to_string()),
            name: name.to_string(),
        }
    }
}
