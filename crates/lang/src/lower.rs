//! Lowering: resolves the parsed AST against stream schemas and produces
//! [`LogicalPlan`]s.

use std::collections::HashMap;

use rumor_core::{AggSpec, IterSpec, JoinSpec, LogicalPlan, SeqSpec};
use rumor_expr::{ArithOp, Expr, NamedExpr, Predicate, SchemaMap, Side};
use rumor_types::{Result, RumorError, Schema};

use crate::ast::{ExprAst, QueryExpr, SelectItem, Statement, StreamInput};

/// A lowered statement, ready for the engine.
#[derive(Debug, Clone)]
pub enum LoweredStatement {
    /// Declare a source stream.
    CreateStream {
        /// Source name.
        name: String,
        /// Schema.
        schema: Schema,
        /// Sharable label (§3.2).
        sharable_label: Option<String>,
    },
    /// A DEFINE was recorded in the lowerer's catalog; nothing to execute.
    Defined {
        /// The defined name.
        name: String,
    },
    /// Register a continuous query.
    Register {
        /// Optional query name.
        name: Option<String>,
        /// The logical plan.
        plan: LogicalPlan,
        /// Output schema.
        schema: Schema,
    },
    /// Retire the named query (the engine resolves the name to an id).
    DropQuery {
        /// The registered query name.
        name: String,
    },
}

/// Resolution context for expressions: schemas plus the alias each side
/// answers to.
struct Scope<'a> {
    left: (&'a Schema, Vec<String>),
    right: Option<(&'a Schema, Vec<String>)>,
}

impl<'a> Scope<'a> {
    fn unary(schema: &'a Schema, aliases: Vec<String>) -> Self {
        Scope {
            left: (schema, aliases),
            right: None,
        }
    }

    fn binary(
        left: &'a Schema,
        left_aliases: Vec<String>,
        right: &'a Schema,
        right_aliases: Vec<String>,
    ) -> Self {
        Scope {
            left: (left, left_aliases),
            right: Some((right, right_aliases)),
        }
    }

    fn resolve_column(&self, qualifier: Option<&str>, name: &str) -> Result<(Side, usize)> {
        if let Some(q) = qualifier {
            if self.left.1.iter().any(|a| a == q) {
                return self
                    .left
                    .0
                    .index_of(name)
                    .map(|i| (Side::Left, i))
                    .ok_or_else(|| RumorError::unknown(format!("column `{q}.{name}`")));
            }
            if let Some((schema, aliases)) = &self.right {
                if aliases.iter().any(|a| a == q) {
                    return schema
                        .index_of(name)
                        .map(|i| (Side::Right, i))
                        .ok_or_else(|| RumorError::unknown(format!("column `{q}.{name}`")));
                }
            }
            return Err(RumorError::unknown(format!("stream alias `{q}`")));
        }
        let in_left = self.left.0.index_of(name);
        let in_right = self.right.as_ref().and_then(|(s, _)| s.index_of(name));
        match (in_left, in_right) {
            (Some(i), None) => Ok((Side::Left, i)),
            (None, Some(i)) => Ok((Side::Right, i)),
            (Some(_), Some(_)) => Err(RumorError::expr(format!(
                "ambiguous column `{name}`: qualify it with a stream alias"
            ))),
            (None, None) => Err(RumorError::unknown(format!("column `{name}`"))),
        }
    }

    fn lower_scalar(&self, e: &ExprAst) -> Result<Expr> {
        match e {
            ExprAst::Column { qualifier, name } => {
                let (side, index) = self.resolve_column(qualifier.as_deref(), name)?;
                Ok(Expr::Col { side, index })
            }
            ExprAst::Lit(v) => Ok(Expr::Lit(v.clone())),
            ExprAst::Arith { op, lhs, rhs } => {
                let op = match op {
                    '+' => ArithOp::Add,
                    '-' => ArithOp::Sub,
                    '*' => ArithOp::Mul,
                    '/' => ArithOp::Div,
                    '%' => ArithOp::Rem,
                    other => return Err(RumorError::expr(format!("unknown operator `{other}`"))),
                };
                Ok(Expr::Bin {
                    op,
                    lhs: Box::new(self.lower_scalar(lhs)?),
                    rhs: Box::new(self.lower_scalar(rhs)?),
                })
            }
            ExprAst::Neg(inner) => Ok(Expr::Neg(Box::new(self.lower_scalar(inner)?))),
            other => Err(RumorError::expr(format!(
                "expected a scalar expression, found a boolean one: {other:?}"
            ))),
        }
    }

    fn lower_pred(&self, e: &ExprAst) -> Result<Predicate> {
        match e {
            ExprAst::Bool(true) => Ok(Predicate::True),
            ExprAst::Bool(false) => Ok(Predicate::False),
            ExprAst::Cmp { op, lhs, rhs } => Ok(Predicate::Cmp {
                op: *op,
                lhs: self.lower_scalar(lhs)?,
                rhs: self.lower_scalar(rhs)?,
            }),
            ExprAst::And(parts) => Ok(Predicate::and(
                parts
                    .iter()
                    .map(|p| self.lower_pred(p))
                    .collect::<Result<_>>()?,
            )),
            ExprAst::Or(parts) => Ok(Predicate::or(
                parts
                    .iter()
                    .map(|p| self.lower_pred(p))
                    .collect::<Result<_>>()?,
            )),
            ExprAst::Not(inner) => Ok(Predicate::not(self.lower_pred(inner)?)),
            other => Err(RumorError::expr(format!(
                "expected a boolean expression: {other:?}"
            ))),
        }
    }
}

/// Resolves statements against a catalog of known streams.
///
/// `Clone` supports transactional script execution: an engine lowers a
/// whole script against a scratch copy and commits the catalog only when
/// every statement succeeded.
#[derive(Default, Clone)]
pub struct Lowerer {
    catalog: HashMap<String, (LogicalPlan, Schema)>,
}

impl Lowerer {
    /// Empty lowerer.
    pub fn new() -> Self {
        Lowerer::default()
    }

    /// Registers an externally created source (equivalent to processing a
    /// `CREATE STREAM`).
    pub fn add_source(&mut self, name: impl Into<String>, schema: Schema) {
        let name = name.into();
        self.catalog
            .insert(name.clone(), (LogicalPlan::source(name), schema));
    }

    /// Whether a stream name is known.
    pub fn knows(&self, name: &str) -> bool {
        self.catalog.contains_key(name)
    }

    /// Lowers one statement, updating the catalog as needed.
    pub fn lower(&mut self, stmt: &Statement) -> Result<LoweredStatement> {
        match stmt {
            Statement::CreateStream {
                name,
                schema,
                sharable_label,
            } => {
                if self.catalog.contains_key(name) {
                    return Err(RumorError::plan(format!("duplicate stream `{name}`")));
                }
                self.add_source(name.clone(), schema.clone());
                Ok(LoweredStatement::CreateStream {
                    name: name.clone(),
                    schema: schema.clone(),
                    sharable_label: sharable_label.clone(),
                })
            }
            Statement::Define { name, query } => {
                if self.catalog.contains_key(name) {
                    return Err(RumorError::plan(format!("duplicate stream `{name}`")));
                }
                let (plan, schema) = self.lower_query(query)?;
                self.catalog.insert(name.clone(), (plan, schema));
                Ok(LoweredStatement::Defined { name: name.clone() })
            }
            Statement::Register { name, query } => {
                let (plan, schema) = self.lower_query(query)?;
                Ok(LoweredStatement::Register {
                    name: name.clone(),
                    plan,
                    schema,
                })
            }
            Statement::DropQuery { name } => Ok(LoweredStatement::DropQuery { name: name.clone() }),
        }
    }

    fn resolve_input(&self, input: &StreamInput) -> Result<(LogicalPlan, Schema, Vec<String>)> {
        let (plan, schema) = self
            .catalog
            .get(&input.name)
            .cloned()
            .ok_or_else(|| RumorError::unknown(format!("stream `{}`", input.name)))?;
        let mut aliases = vec![input.name.clone()];
        if let Some(a) = &input.alias {
            aliases.push(a.clone());
        }
        Ok((plan, schema, aliases))
    }

    fn resolve_aliased(
        &self,
        input: &crate::ast::AliasedInput,
    ) -> Result<(LogicalPlan, Schema, Vec<String>)> {
        let (plan, schema) = self
            .catalog
            .get(&input.name)
            .cloned()
            .ok_or_else(|| RumorError::unknown(format!("stream `{}`", input.name)))?;
        Ok((plan, schema, vec![input.name.clone(), input.alias.clone()]))
    }

    /// Lowers a query expression to `(plan, output schema)`.
    pub fn lower_query(&self, query: &QueryExpr) -> Result<(LogicalPlan, Schema)> {
        match query {
            QueryExpr::Select {
                items,
                input,
                predicate,
                group_by,
            } => self.lower_select(items, input, predicate.as_ref(), group_by),
            QueryExpr::Join {
                left,
                right,
                on,
                within,
                predicate,
            } => self.lower_join(left, right, on, *within, predicate.as_ref()),
            QueryExpr::Sequence {
                first,
                first_where,
                second,
                pair_where,
                within,
            } => self.lower_sequence(
                first,
                first_where.as_ref(),
                second,
                pair_where.as_ref(),
                *within,
            ),
            QueryExpr::Iterate {
                first,
                first_where,
                second,
                filter,
                rebind,
                set,
                within,
            } => self.lower_iterate(
                first,
                first_where.as_ref(),
                second,
                filter.as_ref(),
                rebind,
                set,
                *within,
            ),
        }
    }

    fn lower_select(
        &self,
        items: &[SelectItem],
        input: &StreamInput,
        predicate: Option<&ExprAst>,
        group_by: &[String],
    ) -> Result<(LogicalPlan, Schema)> {
        let (mut plan, schema, aliases) = self.resolve_input(input)?;
        let scope = Scope::unary(&schema, aliases);
        if let Some(p) = predicate {
            plan = plan.select(scope.lower_pred(p)?);
        }
        let aggs: Vec<&SelectItem> = items
            .iter()
            .filter(|i| matches!(i, SelectItem::Agg { .. }))
            .collect();
        if aggs.is_empty() {
            if group_by.is_empty() {
                if matches!(items, [SelectItem::Wildcard]) {
                    // Pure selection (or passthrough). A passthrough with no
                    // predicate still needs a node so the query has an
                    // output stream distinct from the source.
                    if predicate.is_none() {
                        plan = plan.select(Predicate::True);
                    }
                    return Ok((plan, schema));
                }
                let mut outputs = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    match item {
                        SelectItem::Wildcard => {
                            for (idx, f) in schema.fields().iter().enumerate() {
                                outputs.push(NamedExpr::new(f.name.clone(), Expr::col(idx)));
                            }
                        }
                        SelectItem::Expr { expr, alias } => {
                            let lowered = scope.lower_scalar(expr)?;
                            let name = alias.clone().unwrap_or_else(|| match expr {
                                ExprAst::Column { name, .. } => name.clone(),
                                _ => format!("expr{i}"),
                            });
                            outputs.push(NamedExpr::new(name, lowered));
                        }
                        SelectItem::Agg { .. } => unreachable!("no aggs here"),
                    }
                }
                let map = SchemaMap::new(outputs);
                let out_schema = map.output_schema(&schema, None)?;
                return Ok((plan.project(map), out_schema));
            }
            return Err(RumorError::plan(
                "GROUP BY requires an aggregate in the SELECT list".to_string(),
            ));
        }
        if aggs.len() != 1 {
            return Err(RumorError::plan(
                "exactly one aggregate per query is supported".to_string(),
            ));
        }
        let window = input.range.ok_or_else(|| {
            RumorError::plan("aggregation requires a [RANGE n] window".to_string())
        })?;
        let SelectItem::Agg { func, expr, alias } = aggs[0] else {
            unreachable!()
        };
        let agg_input = match expr {
            Some(e) => scope.lower_scalar(e)?,
            None => Expr::lit(1i64), // COUNT(*)
        };
        let group_positions: Vec<usize> = group_by
            .iter()
            .map(|g| {
                schema
                    .index_of(g)
                    .ok_or_else(|| RumorError::unknown(format!("group-by column `{g}`")))
            })
            .collect::<Result<_>>()?;
        // Non-aggregate items must be group-by columns, in group-by order.
        let mut listed = Vec::new();
        for item in items {
            if let SelectItem::Expr { expr, .. } = item {
                match expr {
                    ExprAst::Column { name, .. } if group_by.contains(name) => {
                        listed.push(name.clone());
                    }
                    other => {
                        return Err(RumorError::plan(format!(
                            "non-aggregate SELECT item must be a group-by column: {other:?}"
                        )))
                    }
                }
            }
        }
        let spec = AggSpec {
            func: *func,
            input: agg_input,
            group_by: group_positions,
            window,
        };
        let out_schema = spec.output_schema(&schema)?;
        plan = plan.aggregate(spec);
        // Rename the aggregate column if aliased.
        if let Some(alias) = alias {
            let mut outputs: Vec<NamedExpr> = out_schema
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| NamedExpr::new(f.name.clone(), Expr::col(i)))
                .collect();
            let last = outputs.len() - 1;
            outputs[last].name = alias.clone();
            let map = SchemaMap::new(outputs);
            let renamed = map.output_schema(&out_schema, None)?;
            return Ok((plan.project(map), renamed));
        }
        Ok((plan, out_schema))
    }

    fn lower_join(
        &self,
        left: &StreamInput,
        right: &StreamInput,
        on: &ExprAst,
        within: u64,
        predicate: Option<&ExprAst>,
    ) -> Result<(LogicalPlan, Schema)> {
        let (lplan, lschema, laliases) = self.resolve_input(left)?;
        let (rplan, rschema, raliases) = self.resolve_input(right)?;
        let scope = Scope::binary(&lschema, laliases.clone(), &rschema, raliases.clone());
        let on_pred = scope.lower_pred(on)?;
        let spec = JoinSpec {
            predicate: on_pred,
            window: within,
        };
        let out_schema = lschema.concat(&rschema);
        let mut plan = lplan.join(rplan, spec);
        if let Some(p) = predicate {
            // Post-join filter resolves against the concatenated schema;
            // qualified names still work because left columns keep their
            // positions and right columns are shifted.
            let shifted = Scope::binary(&lschema, laliases, &rschema, raliases)
                .lower_pred(p)?
                .shift_side(Side::Right, lschema.len(), Side::Left);
            plan = plan.select(shifted);
        }
        Ok((plan, out_schema))
    }

    fn lower_sequence(
        &self,
        first: &crate::ast::AliasedInput,
        first_where: Option<&ExprAst>,
        second: &crate::ast::AliasedInput,
        pair_where: Option<&ExprAst>,
        within: u64,
    ) -> Result<(LogicalPlan, Schema)> {
        let (mut lplan, lschema, laliases) = self.resolve_aliased(first)?;
        let (rplan, rschema, raliases) = self.resolve_aliased(second)?;
        if let Some(p) = first_where {
            let scope = Scope::unary(&lschema, laliases.clone());
            lplan = lplan.select(scope.lower_pred(p)?);
        }
        let pred = match pair_where {
            Some(p) => Scope::binary(&lschema, laliases, &rschema, raliases).lower_pred(p)?,
            None => Predicate::True,
        };
        let out_schema = lschema.concat(&rschema);
        Ok((
            lplan.followed_by(
                rplan,
                SeqSpec {
                    predicate: pred,
                    window: within,
                },
            ),
            out_schema,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_iterate(
        &self,
        first: &crate::ast::AliasedInput,
        first_where: Option<&ExprAst>,
        second: &crate::ast::AliasedInput,
        filter: Option<&ExprAst>,
        rebind: &ExprAst,
        set: &[(String, ExprAst)],
        within: u64,
    ) -> Result<(LogicalPlan, Schema)> {
        let (mut lplan, lschema, laliases) = self.resolve_aliased(first)?;
        let (rplan, rschema, raliases) = self.resolve_aliased(second)?;
        if let Some(p) = first_where {
            let scope = Scope::unary(&lschema, laliases.clone());
            lplan = lplan.select(scope.lower_pred(p)?);
        }
        let scope = Scope::binary(&lschema, laliases, &rschema, raliases);
        let filter_pred = match filter {
            Some(p) => scope.lower_pred(p)?,
            None => Predicate::True,
        };
        let rebind_pred = scope.lower_pred(rebind)?;
        // Rebind map: identity over the instance schema with SET overrides.
        let mut outputs: Vec<NamedExpr> = lschema
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| NamedExpr::new(f.name.clone(), Expr::col(i)))
            .collect();
        for (col, expr) in set {
            let idx = lschema.index_of(col).ok_or_else(|| {
                RumorError::unknown(format!("SET column `{col}` not in instance schema"))
            })?;
            outputs[idx].expr = scope.lower_scalar(expr)?;
        }
        let spec = IterSpec {
            filter: filter_pred,
            rebind: rebind_pred,
            rebind_map: SchemaMap::new(outputs),
            window: within,
        };
        Ok((lplan.iterate(rplan, spec), lschema))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_script;
    use rumor_core::{AggFunc, OpDef, PlanGraph};
    use rumor_expr::CmpOp;
    use rumor_types::{Field, ValueType};

    fn lowerer() -> Lowerer {
        let mut l = Lowerer::new();
        l.add_source(
            "cpu",
            Schema::new(vec![
                Field::new("pid", ValueType::Int),
                Field::new("load", ValueType::Float),
            ])
            .unwrap(),
        );
        l.add_source("s", Schema::ints(3));
        l.add_source("t", Schema::ints(3));
        l
    }

    fn lower_one(l: &mut Lowerer, text: &str) -> LoweredStatement {
        let stmts = parse_script(text).unwrap();
        l.lower(&stmts[0]).unwrap()
    }

    #[test]
    fn select_lowered_to_selection() {
        let mut l = lowerer();
        let LoweredStatement::Register { plan, schema, .. } =
            lower_one(&mut l, "SELECT * FROM cpu WHERE pid = 42;")
        else {
            panic!()
        };
        assert_eq!(schema.index_of("load"), Some(1));
        match plan {
            LogicalPlan::Select { predicate, .. } => {
                assert_eq!(predicate, Predicate::attr_eq_const(0, 42i64));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn projection_with_computed_column() {
        let mut l = lowerer();
        let LoweredStatement::Register { plan, schema, .. } =
            lower_one(&mut l, "SELECT pid, load * 2 AS double FROM cpu;")
        else {
            panic!()
        };
        assert_eq!(schema.field(1).unwrap().name, "double");
        assert_eq!(schema.field(1).unwrap().ty, ValueType::Float);
        assert!(matches!(plan, LogicalPlan::Project { .. }));
    }

    #[test]
    fn aggregation_with_rename() {
        let mut l = lowerer();
        let LoweredStatement::Register { plan, schema, .. } = lower_one(
            &mut l,
            "SELECT pid, AVG(load) AS load FROM cpu [RANGE 60] GROUP BY pid;",
        ) else {
            panic!()
        };
        assert_eq!(schema.field(0).unwrap().name, "pid");
        assert_eq!(schema.field(1).unwrap().name, "load");
        // Project(rename) over Aggregate.
        match plan {
            LogicalPlan::Project { input, .. } => match *input {
                LogicalPlan::Aggregate { spec, .. } => {
                    assert_eq!(spec.func, AggFunc::Avg);
                    assert_eq!(spec.window, 60);
                    assert_eq!(spec.group_by, vec![0]);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregation_without_range_is_error() {
        let mut l = lowerer();
        let stmts = parse_script("SELECT AVG(load) FROM cpu;").unwrap();
        assert!(l.lower(&stmts[0]).is_err());
    }

    #[test]
    fn join_with_qualified_columns() {
        let mut l = lowerer();
        let LoweredStatement::Register { plan, schema, .. } = lower_one(
            &mut l,
            "SELECT * FROM s JOIN t ON s.a0 = t.a0 WITHIN 100 WHERE t.a1 > 5;",
        ) else {
            panic!()
        };
        assert_eq!(schema.len(), 6);
        // Select above Join; the right-side column shifted into the
        // concatenated schema.
        match plan {
            LogicalPlan::Select { predicate, input } => {
                assert!(matches!(*input, LogicalPlan::Join { .. }));
                assert_eq!(
                    predicate,
                    Predicate::cmp(CmpOp::Gt, Expr::col(4), Expr::lit(5i64))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sequence_pattern_lowering() {
        let mut l = lowerer();
        let LoweredStatement::Register { plan, .. } = lower_one(
            &mut l,
            "PATTERN s AS x WHERE x.a0 = 1 THEN t AS y WHERE x.a1 = y.a1 WITHIN 50;",
        ) else {
            panic!()
        };
        match plan {
            LogicalPlan::Sequence { left, spec, .. } => {
                assert!(matches!(*left, LogicalPlan::Select { .. }));
                assert_eq!(spec.window, 50);
                let (keys, _) = spec.predicate.split_equi_join();
                assert_eq!(keys, vec![(1, 1)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn iterate_pattern_lowering() {
        let mut l = lowerer();
        let LoweredStatement::Register { plan, schema, .. } = lower_one(
            &mut l,
            "PATTERN cpu AS x WHERE x.load < 20.0 THEN ITERATE cpu AS y \
             FILTER x.pid != y.pid \
             REBIND x.pid = y.pid AND y.load > x.load \
             SET load = y.load WITHIN 300;",
        ) else {
            panic!()
        };
        assert_eq!(schema.index_of("load"), Some(1));
        match plan {
            LogicalPlan::Iterate { spec, .. } => {
                assert_eq!(spec.window, 300);
                // Rebind map: pid passthrough, load from the event.
                assert_eq!(spec.rebind_map.outputs[0].expr, Expr::col(0));
                assert_eq!(spec.rebind_map.outputs[1].expr, Expr::rcol(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn define_then_use() {
        let mut l = lowerer();
        let stmts = parse_script(
            "DEFINE sm AS SELECT pid, AVG(load) AS load FROM cpu [RANGE 5] GROUP BY pid;\n\
             SELECT * FROM sm WHERE load > 90.0;",
        )
        .unwrap();
        l.lower(&stmts[0]).unwrap();
        assert!(l.knows("sm"));
        let LoweredStatement::Register { plan, .. } = l.lower(&stmts[1]).unwrap() else {
            panic!()
        };
        // The query's plan embeds the DEFINEd subplan.
        match plan {
            LogicalPlan::Select { input, .. } => {
                assert!(matches!(*input, LogicalPlan::Project { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_names_error() {
        let mut l = lowerer();
        let stmts = parse_script("SELECT * FROM nope;").unwrap();
        assert!(l.lower(&stmts[0]).is_err());
        let stmts = parse_script("SELECT * FROM cpu WHERE wat = 1;").unwrap();
        assert!(l.lower(&stmts[0]).is_err());
        let stmts = parse_script("SELECT * FROM s JOIN t ON x.a0 = t.a0 WITHIN 5;").unwrap();
        assert!(l.lower(&stmts[0]).is_err());
    }

    #[test]
    fn ambiguous_column_error() {
        let mut l = lowerer();
        let stmts = parse_script("SELECT * FROM s JOIN t ON a0 = 1 WITHIN 5;").unwrap();
        assert!(l.lower(&stmts[0]).is_err());
    }

    #[test]
    fn lowered_plans_register_in_plan_graph() {
        // End-to-end: parse, lower, build the naive plan.
        let mut l = Lowerer::new();
        let mut p = PlanGraph::new();
        let stmts = parse_script(
            "CREATE STREAM cpu (pid INT, load FLOAT);\n\
             SELECT * FROM cpu WHERE pid = 3;",
        )
        .unwrap();
        for stmt in &stmts {
            match l.lower(stmt).unwrap() {
                LoweredStatement::CreateStream {
                    name,
                    schema,
                    sharable_label,
                } => {
                    p.add_source(name, schema, sharable_label).unwrap();
                }
                LoweredStatement::Register { plan, .. } => {
                    p.add_query(&plan).unwrap();
                }
                LoweredStatement::Defined { .. } | LoweredStatement::DropQuery { .. } => {}
            }
        }
        assert_eq!(p.mop_count(), 1);
        let node = p.mops().next().unwrap();
        assert!(matches!(node.members[0].def, OpDef::Select(_)));
        p.validate().unwrap();
    }
}
