//! Recursive-descent parser for the RUMOR query language.

use rumor_core::AggFunc;
use rumor_expr::CmpOp;
use rumor_types::{Field, Result, RumorError, Schema, Value, ValueType};

use crate::ast::{AliasedInput, ExprAst, QueryExpr, SelectItem, Statement, StreamInput};
use crate::token::{tokenize, Token, TokenKind};

/// Parses a semicolon-separated script into statements.
pub fn parse_script(input: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    loop {
        while p.eat_symbol(&TokenKind::Semicolon) {}
        if p.at_eof() {
            break;
        }
        statements.push(p.statement()?);
        if !p.at_eof() && !p.eat_symbol(&TokenKind::Semicolon) {
            return Err(p.err("expected `;` after statement"));
        }
    }
    Ok(statements)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> RumorError {
        let t = self.peek();
        RumorError::parse(
            format!("{} (found {:?})", msg.into(), t.kind),
            t.line,
            t.column,
        )
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().kind.is_kw(kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", kw.to_uppercase())))
        }
    }

    fn eat_symbol(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat_symbol(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{what}`")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn integer(&mut self) -> Result<u64> {
        match self.peek().kind {
            TokenKind::Int(v) if v >= 0 => {
                self.bump();
                Ok(v as u64)
            }
            _ => Err(self.err("expected non-negative integer")),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("create") {
            return self.create_stream();
        }
        if self.at_kw("define") {
            self.bump();
            let name = self.ident()?;
            self.expect_kw("as")?;
            let query = self.query_expr()?;
            return Ok(Statement::Define { name, query });
        }
        if self.at_kw("query") {
            self.bump();
            let name = self.ident()?;
            self.expect_kw("as")?;
            let query = self.query_expr()?;
            return Ok(Statement::Register {
                name: Some(name),
                query,
            });
        }
        if self.at_kw("drop") {
            self.bump();
            self.expect_kw("query")?;
            let name = self.ident()?;
            return Ok(Statement::DropQuery { name });
        }
        let query = self.query_expr()?;
        Ok(Statement::Register { name: None, query })
    }

    fn create_stream(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        self.expect_kw("stream")?;
        let name = self.ident()?;
        self.expect_symbol(&TokenKind::LParen, "(")?;
        let mut fields = Vec::new();
        loop {
            let fname = self.ident()?;
            let tname = self.ident()?;
            let ty = match tname.to_ascii_lowercase().as_str() {
                "int" | "integer" | "bigint" => ValueType::Int,
                "float" | "double" | "real" => ValueType::Float,
                "bool" | "boolean" => ValueType::Bool,
                "str" | "string" | "text" | "varchar" => ValueType::Str,
                other => return Err(self.err(format!("unknown type `{other}`"))),
            };
            fields.push(Field::new(fname, ty));
            if !self.eat_symbol(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_symbol(&TokenKind::RParen, ")")?;
        let sharable_label = if self.eat_kw("sharable") {
            self.expect_kw("with")?;
            match self.bump().kind {
                TokenKind::Str(s) => Some(s),
                _ => return Err(self.err("expected sharable label string")),
            }
        } else {
            None
        };
        Ok(Statement::CreateStream {
            name,
            schema: Schema::new(fields)?,
            sharable_label,
        })
    }

    // ------------------------------------------------------------------
    // Query expressions
    // ------------------------------------------------------------------

    fn query_expr(&mut self) -> Result<QueryExpr> {
        if self.at_kw("pattern") {
            return self.pattern_query();
        }
        if self.at_kw("select") {
            return self.select_query();
        }
        Err(self.err("expected SELECT or PATTERN"))
    }

    fn select_query(&mut self) -> Result<QueryExpr> {
        self.expect_kw("select")?;
        let items = self.select_items()?;
        self.expect_kw("from")?;
        let left = self.stream_input()?;
        if self.eat_kw("join") {
            let right = self.stream_input()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            self.expect_kw("within")?;
            let within = self.integer()?;
            let predicate = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            if !matches!(items.as_slice(), [SelectItem::Wildcard]) {
                return Err(self.err("join queries currently require SELECT *"));
            }
            return Ok(QueryExpr::Join {
                left,
                right,
                on,
                within,
                predicate,
            });
        }
        let predicate = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.ident()?);
                if !self.eat_symbol(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(QueryExpr::Select {
            items,
            input: left,
            predicate,
            group_by,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.eat_symbol(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else if let Some(func) = self.peek_agg_func() {
                self.bump();
                self.expect_symbol(&TokenKind::LParen, "(")?;
                let expr = if self.eat_symbol(&TokenKind::Star) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_symbol(&TokenKind::RParen, ")")?;
                let alias = self.optional_alias()?;
                items.push(SelectItem::Agg { func, expr, alias });
            } else {
                let expr = self.expr()?;
                let alias = self.optional_alias()?;
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn peek_agg_func(&self) -> Option<AggFunc> {
        // Only treat as aggregate when followed by `(`.
        let TokenKind::Ident(name) = &self.peek().kind else {
            return None;
        };
        if self.tokens.get(self.pos + 1).map(|t| &t.kind) != Some(&TokenKind::LParen) {
            return None;
        }
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    fn optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn stream_input(&mut self) -> Result<StreamInput> {
        let name = self.ident()?;
        let range = if self.eat_symbol(&TokenKind::LBracket) {
            self.expect_kw("range")?;
            let n = self.integer()?;
            self.expect_symbol(&TokenKind::RBracket, "]")?;
            Some(n)
        } else {
            None
        };
        // Alias: `AS x` or a bare identifier that is not a clause keyword.
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            match &self.peek().kind {
                TokenKind::Ident(s)
                    if !["join", "on", "where", "group", "within", "then"]
                        .iter()
                        .any(|kw| s.eq_ignore_ascii_case(kw)) =>
                {
                    Some(self.ident()?)
                }
                _ => None,
            }
        };
        Ok(StreamInput { name, range, alias })
    }

    fn aliased_input(&mut self) -> Result<AliasedInput> {
        let name = self.ident()?;
        self.expect_kw("as")?;
        let alias = self.ident()?;
        Ok(AliasedInput { name, alias })
    }

    fn pattern_query(&mut self) -> Result<QueryExpr> {
        self.expect_kw("pattern")?;
        let first = self.aliased_input()?;
        let first_where = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_kw("then")?;
        if self.eat_kw("iterate") {
            let second = self.aliased_input()?;
            let filter = if self.eat_kw("filter") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_kw("rebind")?;
            let rebind = self.expr()?;
            let mut set = Vec::new();
            if self.eat_kw("set") {
                loop {
                    let col = self.ident()?;
                    self.expect_symbol(&TokenKind::Eq, "=")?;
                    let expr = self.expr()?;
                    set.push((col, expr));
                    if !self.eat_symbol(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect_kw("within")?;
            let within = self.integer()?;
            Ok(QueryExpr::Iterate {
                first,
                first_where,
                second,
                filter,
                rebind,
                set,
                within,
            })
        } else {
            let second = self.aliased_input()?;
            let pair_where = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_kw("within")?;
            let within = self.integer()?;
            Ok(QueryExpr::Sequence {
                first,
                first_where,
                second,
                pair_where,
                within,
            })
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<ExprAst> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<ExprAst> {
        let mut parts = vec![self.and_expr()?];
        while self.eat_kw("or") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            ExprAst::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<ExprAst> {
        let mut parts = vec![self.not_expr()?];
        while self.eat_kw("and") {
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            ExprAst::And(parts)
        })
    }

    fn not_expr(&mut self) -> Result<ExprAst> {
        if self.eat_kw("not") {
            Ok(ExprAst::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<ExprAst> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Ne => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(ExprAst::Cmp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<ExprAst> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => '+',
                TokenKind::Minus => '-',
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = ExprAst::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<ExprAst> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => '*',
                TokenKind::Slash => '/',
                TokenKind::Percent => '%',
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = ExprAst::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<ExprAst> {
        if self.eat_symbol(&TokenKind::Minus) {
            Ok(ExprAst::Neg(Box::new(self.unary_expr()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<ExprAst> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(ExprAst::Lit(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(ExprAst::Lit(Value::Float(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(ExprAst::Lit(Value::str(s)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect_symbol(&TokenKind::RParen, ")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("true") {
                    self.bump();
                    return Ok(ExprAst::Bool(true));
                }
                if name.eq_ignore_ascii_case("false") {
                    self.bump();
                    return Ok(ExprAst::Bool(false));
                }
                self.bump();
                if self.eat_symbol(&TokenKind::Dot) {
                    let col = self.ident()?;
                    Ok(ExprAst::Column {
                        qualifier: Some(name),
                        name: col,
                    })
                } else {
                    Ok(ExprAst::Column {
                        qualifier: None,
                        name,
                    })
                }
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(input: &str) -> Statement {
        let mut stmts = parse_script(input).unwrap();
        assert_eq!(stmts.len(), 1, "expected one statement");
        stmts.pop().unwrap()
    }

    #[test]
    fn create_stream() {
        let s = one("CREATE STREAM cpu (pid INT, load FLOAT);");
        match s {
            Statement::CreateStream {
                name,
                schema,
                sharable_label,
            } => {
                assert_eq!(name, "cpu");
                assert_eq!(schema.len(), 2);
                assert_eq!(schema.field(1).unwrap().ty, ValueType::Float);
                assert!(sharable_label.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_stream_sharable() {
        let s = one("CREATE STREAM s1 (a INT) SHARABLE WITH 'grp';");
        match s {
            Statement::CreateStream { sharable_label, .. } => {
                assert_eq!(sharable_label.as_deref(), Some("grp"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = one("SELECT * FROM cpu WHERE pid = 42;");
        match s {
            Statement::Register {
                name: None,
                query:
                    QueryExpr::Select {
                        items,
                        input,
                        predicate,
                        group_by,
                    },
            } => {
                assert_eq!(items, vec![SelectItem::Wildcard]);
                assert_eq!(input.name, "cpu");
                assert!(group_by.is_empty());
                assert_eq!(
                    predicate.unwrap(),
                    ExprAst::Cmp {
                        op: CmpOp::Eq,
                        lhs: Box::new(ExprAst::col("pid")),
                        rhs: Box::new(ExprAst::Lit(Value::Int(42))),
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregate_select() {
        let s = one("SELECT pid, AVG(load) AS load FROM cpu [RANGE 60] GROUP BY pid;");
        match s {
            Statement::Register {
                query:
                    QueryExpr::Select {
                        items,
                        input,
                        group_by,
                        ..
                    },
                ..
            } => {
                assert_eq!(items.len(), 2);
                assert!(matches!(
                    &items[1],
                    SelectItem::Agg { func: AggFunc::Avg, alias: Some(a), .. } if a == "load"
                ));
                assert_eq!(input.range, Some(60));
                assert_eq!(group_by, vec!["pid".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let s = one("SELECT COUNT(*) FROM s [RANGE 5];");
        match s {
            Statement::Register {
                query: QueryExpr::Select { items, .. },
                ..
            } => {
                assert!(matches!(
                    &items[0],
                    SelectItem::Agg {
                        func: AggFunc::Count,
                        expr: None,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn join_query() {
        let s = one("SELECT * FROM s JOIN t ON s.a0 = t.a0 WITHIN 100;");
        match s {
            Statement::Register {
                query:
                    QueryExpr::Join {
                        left,
                        right,
                        within,
                        ..
                    },
                ..
            } => {
                assert_eq!(left.name, "s");
                assert_eq!(right.name, "t");
                assert_eq!(within, 100);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sequence_pattern() {
        let s = one("PATTERN s AS x WHERE x.a0 = 1 THEN t AS y WHERE x.a1 = y.a1 WITHIN 50;");
        match s {
            Statement::Register {
                query:
                    QueryExpr::Sequence {
                        first,
                        second,
                        within,
                        first_where,
                        pair_where,
                    },
                ..
            } => {
                assert_eq!(first.alias, "x");
                assert_eq!(second.alias, "y");
                assert_eq!(within, 50);
                assert!(first_where.is_some());
                assert!(pair_where.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn iterate_pattern() {
        let s = one("PATTERN sm AS x WHERE x.load < 20 THEN ITERATE sm AS y \
             FILTER x.pid != y.pid \
             REBIND x.pid = y.pid AND y.load > x.load \
             SET load = y.load WITHIN 300;");
        match s {
            Statement::Register {
                query:
                    QueryExpr::Iterate {
                        first,
                        second,
                        filter,
                        set,
                        within,
                        ..
                    },
                ..
            } => {
                assert_eq!(first.alias, "x");
                assert_eq!(second.alias, "y");
                assert!(filter.is_some());
                assert_eq!(set.len(), 1);
                assert_eq!(set[0].0, "load");
                assert_eq!(within, 300);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drop_query_statement() {
        let s = one("DROP QUERY alerts;");
        assert_eq!(
            s,
            Statement::DropQuery {
                name: "alerts".to_string()
            }
        );
        // DROP without QUERY, or without a name, is rejected.
        assert!(parse_script("DROP alerts;").is_err());
        assert!(parse_script("DROP QUERY;").is_err());
    }

    #[test]
    fn define_and_named_query() {
        let stmts = parse_script(
            "DEFINE sm AS SELECT pid, AVG(load) AS load FROM cpu [RANGE 5] GROUP BY pid;\n\
             QUERY q1 AS SELECT * FROM sm WHERE load > 90;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(matches!(&stmts[0], Statement::Define { name, .. } if name == "sm"));
        assert!(matches!(
            &stmts[1],
            Statement::Register { name: Some(n), .. } if n == "q1"
        ));
    }

    #[test]
    fn expression_precedence() {
        let s = one("SELECT a + b * 2 AS x FROM s;");
        match s {
            Statement::Register {
                query: QueryExpr::Select { items, .. },
                ..
            } => {
                let SelectItem::Expr { expr, .. } = &items[0] else {
                    panic!()
                };
                // a + (b * 2)
                assert_eq!(
                    *expr,
                    ExprAst::Arith {
                        op: '+',
                        lhs: Box::new(ExprAst::col("a")),
                        rhs: Box::new(ExprAst::Arith {
                            op: '*',
                            lhs: Box::new(ExprAst::col("b")),
                            rhs: Box::new(ExprAst::Lit(Value::Int(2))),
                        }),
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boolean_precedence() {
        let s = one("SELECT * FROM s WHERE a = 1 OR b = 2 AND NOT c = 3;");
        match s {
            Statement::Register {
                query: QueryExpr::Select { predicate, .. },
                ..
            } => {
                // OR(a=1, AND(b=2, NOT c=3))
                match predicate.unwrap() {
                    ExprAst::Or(parts) => {
                        assert_eq!(parts.len(), 2);
                        assert!(matches!(&parts[1], ExprAst::And(ps) if ps.len() == 2));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_script("SELECT FROM;").unwrap_err();
        match err {
            RumorError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_script("PATTERN s THEN t AS y WITHIN 5;").is_err());
        assert!(parse_script("CREATE STREAM s (a WAT);").is_err());
        assert!(parse_script("SELECT * FROM s WHERE a = ;").is_err());
    }

    #[test]
    fn nested_parens_and_unary_minus() {
        let s = one("SELECT -(a + 2) * 3 AS x FROM s;");
        match s {
            Statement::Register {
                query: QueryExpr::Select { items, .. },
                ..
            } => {
                let SelectItem::Expr { expr, .. } = &items[0] else {
                    panic!()
                };
                assert!(matches!(
                    expr,
                    ExprAst::Arith { op: '*', lhs, .. } if matches!(**lhs, ExprAst::Neg(_))
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn modulo_and_float_literals() {
        let s = one("SELECT * FROM s WHERE a % 2 = 0 AND b < 1.5;");
        match s {
            Statement::Register {
                query: QueryExpr::Select { predicate, .. },
                ..
            } => {
                let ExprAst::And(parts) = predicate.unwrap() else {
                    panic!()
                };
                assert_eq!(parts.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn within_required_for_patterns() {
        assert!(parse_script("PATTERN a AS x THEN b AS y;").is_err());
        assert!(parse_script("SELECT * FROM a JOIN b ON a.x = b.x;").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        // `FROM s extra` parses (alias), but stray tokens do not.
        assert!(parse_script("SELECT * FROM s WHERE a = 1 2;").is_err());
        assert!(parse_script("SELECT * FROM s GROUP;").is_err());
    }

    #[test]
    fn multiple_statements_and_comments() {
        let stmts =
            parse_script("-- setup\nCREATE STREAM s (a INT);\n\nSELECT * FROM s; SELECT * FROM s;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }
}
