//! Lexer for the RUMOR query language.

use rumor_types::{Result, RumorError};

/// A lexical token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Whether this is the identifier `kw` (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a script. `--` starts a line comment.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line,
                column: col,
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push!(TokenKind::LParen, 1),
            ')' => push!(TokenKind::RParen, 1),
            '[' => push!(TokenKind::LBracket, 1),
            ']' => push!(TokenKind::RBracket, 1),
            ',' => push!(TokenKind::Comma, 1),
            ';' => push!(TokenKind::Semicolon, 1),
            '.' => push!(TokenKind::Dot, 1),
            '*' => push!(TokenKind::Star, 1),
            '/' => push!(TokenKind::Slash, 1),
            '%' => push!(TokenKind::Percent, 1),
            '+' => push!(TokenKind::Plus, 1),
            '-' => push!(TokenKind::Minus, 1),
            '=' => push!(TokenKind::Eq, 1),
            '!' if bytes.get(i + 1) == Some(&b'=') => push!(TokenKind::Ne, 2),
            '<' if bytes.get(i + 1) == Some(&b'=') => push!(TokenKind::Le, 2),
            '<' if bytes.get(i + 1) == Some(&b'>') => push!(TokenKind::Ne, 2),
            '<' => push!(TokenKind::Lt, 1),
            '>' if bytes.get(i + 1) == Some(&b'=') => push!(TokenKind::Ge, 2),
            '>' => push!(TokenKind::Gt, 1),
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(RumorError::parse("unterminated string", line, col));
                }
                let s = input[start..j].to_string();
                let len = j + 1 - i;
                push!(TokenKind::Str(s), len);
            }
            '0'..='9' => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &input[start..j];
                let kind =
                    if is_float {
                        TokenKind::Float(text.parse().map_err(|_| {
                            RumorError::parse(format!("bad float `{text}`"), line, col)
                        })?)
                    } else {
                        TokenKind::Int(text.parse().map_err(|_| {
                            RumorError::parse(format!("bad integer `{text}`"), line, col)
                        })?)
                    };
                let len = j - start;
                push!(kind, len);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let text = input[start..j].to_string();
                let len = j - start;
                push!(TokenKind::Ident(text), len);
            }
            other => {
                return Err(RumorError::parse(
                    format!("unexpected character `{other}`"),
                    line,
                    col,
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        column: col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("select * from s;"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Star,
                TokenKind::Ident("from".into()),
                TokenKind::Ident("s".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5"),
            vec![TokenKind::Int(42), TokenKind::Float(3.5), TokenKind::Eof]
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            kinds("= != <> < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_comments() {
        assert_eq!(
            kinds("'hello' -- comment\n7"),
            vec![
                TokenKind::Str("hello".into()),
                TokenKind::Int(7),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn positions_tracked() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn keyword_match_is_case_insensitive() {
        let toks = tokenize("SeLeCt").unwrap();
        assert!(toks[0].kind.is_kw("select"));
        assert!(!toks[0].kind.is_kw("from"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a ? b").is_err());
    }

    #[test]
    fn minus_and_comment_disambiguation() {
        // A single minus is an operator; two minuses start a comment.
        assert_eq!(
            kinds("1 - 2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Minus,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds("1 --x\n"), vec![TokenKind::Int(1), TokenKind::Eof]);
    }
}
