//! # rumor-lang
//!
//! A small continuous-query language for RUMOR covering both CQL-style
//! relational stream queries and Cayuga-style event pattern queries — the
//! two query classes whose MQO techniques the paper unifies, plus the
//! *hybrid* queries of §4.1 that combine them.
//!
//! ## Statements
//!
//! ```text
//! CREATE STREAM cpu (pid INT, load FLOAT);
//!
//! -- named derived stream (reusable subplan; sharing happens via m-rules)
//! DEFINE smoothed AS
//!   SELECT pid, AVG(load) AS load FROM cpu [RANGE 5] GROUP BY pid;
//!
//! -- CQL-style queries
//! SELECT * FROM cpu WHERE pid = 42;
//! SELECT pid, load * 2 AS double FROM cpu;
//! SELECT * FROM s JOIN t ON s.a0 = t.a0 WITHIN 100;
//!
//! -- event pattern queries (Cayuga ; and µ)
//! PATTERN s AS x THEN t AS y WHERE x.a0 = y.a0 WITHIN 100;
//! PATTERN smoothed AS x WHERE x.load < 20
//!   THEN ITERATE smoothed AS y
//!   FILTER x.pid != y.pid
//!   REBIND x.pid = y.pid AND y.load > x.load SET load = y.load
//!   WITHIN 300;
//!
//! -- dynamic lifecycle: retire a named query (valid while running)
//! DROP QUERY alerts;
//! ```
//!
//! `parse_script` produces [`ast::Statement`]s; [`lower::Lowerer`] resolves
//! names/schemas and emits [`rumor_core::LogicalPlan`]s ready for
//! registration in a plan graph.

#![warn(missing_docs)]

pub mod ast;
pub mod lower;
pub mod parser;
pub mod token;

pub use ast::{QueryExpr, SelectItem, Statement};
pub use lower::{LoweredStatement, Lowerer};
pub use parser::parse_script;
