//! The ingest thread: single owner of the shared engine and session.
//!
//! Every connection's reader thread decodes frames into `Command`s and
//! sends them down one *bounded* command queue (see
//! [`crate::server::ServerConfig::command_queue_depth`]). The blocking
//! send is the protocol's admission control: a client that pushes faster
//! than the engine drains stalls *its own* reader (and therefore its own
//! TCP window), exactly like a producer hitting the bounded staging
//! queues of [`rumor_engine::StreamingConfig`] — the shared plan itself
//! is never contended.
//!
//! The thread owns both halves of the engine:
//!
//! * the [`Rumor`] optimizer handle, so `REGISTER`/`DROP` go through the
//!   live [`Optimizer::integrate`](rumor_core::Optimizer) path
//!   (`Rumor::execute` → incremental integration → plan delta) followed
//!   by a [`Session::update_plan`](rumor_engine::EventRuntime::update_plan)
//!   epoch swap;
//! * the [`Session`] itself, plus one [`Subscription`] per registered
//!   query, drained after every command batch and fanned out to the
//!   owning client's `Outbox` ([`crate::outbox`]).
//!
//! Queries are namespaced per connection (`__c<id>__<name>`), so two
//! clients registering the *same* query text hold distinct `QueryId`s —
//! and the optimizer merges their plans into shared m-ops, which is the
//! entire point of the paper: sharing across independent tenants.

use std::collections::HashMap;

use crossbeam_channel::Receiver;
use rumor_engine::{EventRuntime, Rumor, Session, SessionConfig, Subscription};
use rumor_types::{QueryId, Result, RumorError, SourceId, Tuple};

use crate::outbox::Outbox;
use crate::proto::{Reply, Request, PROTOCOL_VERSION};

/// Max tuples per `RESULTS` frame; larger drains are chunked.
const RESULTS_CHUNK: usize = 4096;

/// One unit of work for the ingest thread.
#[derive(Debug)]
pub(crate) enum Command {
    /// A connection was accepted; registers its outbox.
    Connect { client: u64, outbox: Outbox },
    /// A decoded request from a connection.
    Request { client: u64, req: Request },
    /// The connection produced an undecodable frame; reply with an error
    /// and close it.
    Malformed { client: u64, message: String },
    /// The connection is gone (EOF, I/O error, or write failure).
    Disconnect { client: u64 },
    /// Begin the graceful drain and exit the thread.
    Shutdown,
}

struct ClientState {
    outbox: Outbox,
    /// `HELLO` seen; all other requests are rejected until then.
    greeted: bool,
    /// Client-visible name → engine query id.
    queries: HashMap<String, QueryId>,
    /// Engine query id → live subscription.
    subs: Vec<(QueryId, Subscription)>,
}

pub(crate) struct Ingest {
    engine: Rumor,
    session: Session,
    clients: HashMap<u64, ClientState>,
    next_query_seq: u64,
}

impl Ingest {
    /// Builds the shared session. Runs on the ingest thread itself so the
    /// compiled runtime never crosses a thread boundary.
    pub(crate) fn new(mut engine: Rumor, session_config: SessionConfig) -> Result<Ingest> {
        // The live add/remove path (`Optimizer::integrate`) requires an
        // optimized plan; running the optimizer on an already-optimized
        // plan is a fixpoint no-op.
        engine.optimize()?;
        let session = engine.session().config(session_config).build()?;
        Ok(Ingest {
            engine,
            session,
            clients: HashMap::new(),
            next_query_seq: 0,
        })
    }

    /// The source table sent in `WELCOME`.
    pub(crate) fn source_table(&self) -> Vec<(String, SourceId)> {
        self.engine
            .plan()
            .sources()
            .iter()
            .map(|s| (s.name.clone(), s.id))
            .collect()
    }

    /// Main loop: drain the command queue in batches, deliver results
    /// after each batch. Returns when `Shutdown` is processed or every
    /// sender hangs up.
    pub(crate) fn run(mut self, rx: Receiver<Command>) {
        // The loop ends when every sender hangs up (server handle
        // dropped without shutdown) or a Shutdown command arrives.
        while let Ok(first) = rx.recv() {
            let mut batch = vec![first];
            batch.extend(rx.try_iter());
            let mut shutting_down = false;
            for cmd in batch {
                if matches!(cmd, Command::Shutdown) {
                    shutting_down = true;
                    break;
                }
                self.handle(cmd);
            }
            self.deliver();
            if shutting_down {
                self.drain_and_close();
                return;
            }
        }
        self.drain_and_close();
    }

    fn handle(&mut self, cmd: Command) {
        match cmd {
            Command::Connect { client, outbox } => {
                self.clients.insert(
                    client,
                    ClientState {
                        outbox,
                        greeted: false,
                        queries: HashMap::new(),
                        subs: Vec::new(),
                    },
                );
            }
            Command::Request { client, req } => self.handle_request(client, req),
            Command::Malformed { client, message } => {
                if let Some(state) = self.clients.get(&client) {
                    state.outbox.push_control(
                        Reply::Error {
                            message: RumorError::io(message).to_string(),
                        }
                        .encode(),
                    );
                }
                self.remove_client(client, false);
            }
            Command::Disconnect { client } => self.remove_client(client, false),
            Command::Shutdown => unreachable!("filtered by run()"),
        }
    }

    fn handle_request(&mut self, client: u64, req: Request) {
        let Some(state) = self.clients.get(&client) else {
            return; // already removed (e.g. writer died first)
        };
        if !state.greeted && !matches!(req, Request::Hello { .. }) {
            state.outbox.push_control(
                Reply::Error {
                    message: RumorError::io("HELLO required before any other request").to_string(),
                }
                .encode(),
            );
            return;
        }
        match req {
            Request::Hello { version } => {
                if version != PROTOCOL_VERSION {
                    state.outbox.push_control(
                        Reply::Error {
                            message: RumorError::io(format!(
                                "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                            ))
                            .to_string(),
                        }
                        .encode(),
                    );
                    self.remove_client(client, false);
                    return;
                }
                let welcome = Reply::Welcome {
                    version: PROTOCOL_VERSION,
                    sources: self.source_table(),
                };
                let state = self.clients.get_mut(&client).expect("checked above");
                state.greeted = true;
                state.outbox.push_control(welcome.encode());
            }
            Request::Register { name, body } => {
                let reply = match self.register(client, &name, &body) {
                    Ok(query) => Reply::Registered { name, query },
                    Err(e) => Reply::Error {
                        message: e.to_string(),
                    },
                };
                if let Some(state) = self.clients.get(&client) {
                    state.outbox.push_control(reply.encode());
                }
            }
            Request::Drop { name } => {
                let reply = match self.drop_query(client, &name) {
                    Ok(()) => Reply::Dropped { name },
                    Err(e) => Reply::Error {
                        message: e.to_string(),
                    },
                };
                if let Some(state) = self.clients.get(&client) {
                    state.outbox.push_control(reply.encode());
                }
            }
            Request::Push { source, tuple } => {
                if let Err(e) = self.session.push(source, tuple) {
                    self.reply_error(client, e);
                }
            }
            Request::PushBatch { events } => {
                if let Err(e) = self.session.push_batch(&events) {
                    self.reply_error(client, e);
                }
            }
            Request::Flush => {
                if let Err(e) = self.session.flush() {
                    self.reply_error(client, e);
                    return;
                }
                self.deliver();
                if let Some(state) = self.clients.get(&client) {
                    let shed = state.outbox.take_unreported_shed();
                    if shed > 0 {
                        state
                            .outbox
                            .push_control(Reply::Shed { dropped: shed }.encode());
                    }
                    state.outbox.push_control(Reply::Flushed.encode());
                }
            }
            Request::Stats => {
                let reply = match self.stats_json() {
                    Ok(json) => Reply::StatsJson { json },
                    Err(e) => Reply::Error {
                        message: e.to_string(),
                    },
                };
                if let Some(state) = self.clients.get(&client) {
                    state.outbox.push_control(reply.encode());
                }
            }
            Request::Explain => {
                let reply = match self.session.explain() {
                    Ok(text) => Reply::ExplainText { text },
                    Err(e) => Reply::Error {
                        message: e.to_string(),
                    },
                };
                if let Some(state) = self.clients.get(&client) {
                    state.outbox.push_control(reply.encode());
                }
            }
            Request::Bye => self.remove_client(client, true),
        }
    }

    fn reply_error(&self, client: u64, e: RumorError) {
        if let Some(state) = self.clients.get(&client) {
            state.outbox.push_control(
                Reply::Error {
                    message: e.to_string(),
                }
                .encode(),
            );
        }
    }

    /// Registers `name AS body` for `client` through the live integrate
    /// path, hot-swaps the session, and subscribes.
    fn register(&mut self, client: u64, name: &str, body: &str) -> Result<QueryId> {
        validate_identifier(name)?;
        // The body is spliced into a script; a statement separator inside
        // it could smuggle extra statements past per-client accounting.
        if body.contains(';') {
            return Err(RumorError::io(
                "query body must not contain ';' (single statement per REGISTER)",
            ));
        }
        let state = self
            .clients
            .get(&client)
            .ok_or_else(|| RumorError::unknown(format!("client {client}")))?;
        if state.queries.contains_key(name) {
            return Err(RumorError::schema(format!(
                "query `{name}` already registered on this connection"
            )));
        }
        // Engine-side names must be globally unique and survive a client
        // re-registering a name it dropped earlier, so a monotonic
        // sequence number joins the client id in the internal name.
        let seq = self.next_query_seq;
        self.next_query_seq += 1;
        let internal = format!("__c{client}_{seq}_{name}");
        let qids = self
            .engine
            .execute(&format!("QUERY {internal} AS {body};"))?;
        debug_assert_eq!(qids.len(), 1, "single-statement script");
        let qid = qids[0];
        if let Err(e) = self.session.update_plan(self.engine.plan()) {
            // The session refused the swap (e.g. live keyed state would be
            // re-routed). Roll the registration back so engine and session
            // stay consistent, and surface the refusal to the client.
            let _ = self.engine.remove_query(qid);
            let _ = self.session.update_plan(self.engine.plan());
            return Err(e);
        }
        let sub = self.session.subscribe(qid);
        let state = self.clients.get_mut(&client).expect("present above");
        state.queries.insert(name.to_string(), qid);
        state.subs.push((qid, sub));
        Ok(qid)
    }

    fn drop_query(&mut self, client: u64, name: &str) -> Result<()> {
        let state = self
            .clients
            .get_mut(&client)
            .ok_or_else(|| RumorError::unknown(format!("client {client}")))?;
        let qid = state
            .queries
            .remove(name)
            .ok_or_else(|| RumorError::unknown(format!("query `{name}`")))?;
        // Deliver anything the query produced before it disappears.
        if let Some(idx) = state.subs.iter().position(|(q, _)| *q == qid) {
            let (_, mut sub) = state.subs.remove(idx);
            let pending = sub.drain();
            let outbox = state.outbox.clone();
            push_results(&outbox, qid, pending);
        }
        self.engine.remove_query(qid)?;
        self.session.update_plan(self.engine.plan())
    }

    /// Drains every subscription and fans results out to client outboxes.
    fn deliver(&mut self) {
        for state in self.clients.values_mut() {
            for (qid, sub) in &mut state.subs {
                let tuples = sub.drain();
                if !tuples.is_empty() {
                    push_results(&state.outbox, *qid, tuples);
                }
            }
        }
    }

    /// `{"server": {...}, "session": <snapshot JSON>}` — the envelope
    /// follows the hand-rolled JSON conventions of `rumor_engine::stats`.
    fn stats_json(&mut self) -> Result<String> {
        let snapshot = self.session.stats()?;
        let registered: usize = self.clients.values().map(|c| c.queries.len()).sum();
        let shed: u64 = self.clients.values().map(|c| c.outbox.shed_total()).sum();
        Ok(format!(
            "{{\"server\": {{\"clients\": {}, \"registered_queries\": {}, \"shed_results\": {}}}, \"session\": {}}}",
            self.clients.len(),
            registered,
            shed,
            snapshot.to_json()
        ))
    }

    /// Tears a client down: drains its pending results, removes its
    /// queries from the shared plan, optionally says goodbye, and closes
    /// the outbox so the writer drains and exits.
    fn remove_client(&mut self, client: u64, graceful: bool) {
        let Some(mut state) = self.clients.remove(&client) else {
            return;
        };
        if graceful {
            // A BYE must not lose results already earned: barrier, then
            // deliver this client's subscriptions one last time.
            let _ = self.session.flush();
        }
        for (qid, sub) in &mut state.subs {
            let pending = sub.drain();
            if graceful {
                push_results(&state.outbox, *qid, pending);
            }
        }
        state.subs.clear();
        let mut plan_dirty = false;
        for (_, qid) in state.queries.drain() {
            if self.engine.remove_query(qid).is_ok() {
                plan_dirty = true;
            }
        }
        if plan_dirty {
            let _ = self.session.update_plan(self.engine.plan());
        }
        if graceful {
            let shed = state.outbox.take_unreported_shed();
            if shed > 0 {
                state
                    .outbox
                    .push_control(Reply::Shed { dropped: shed }.encode());
            }
            state.outbox.push_control(Reply::Goodbye.encode());
        }
        state.outbox.close();
    }

    /// Graceful drain on shutdown: flush barrier, final delivery, then a
    /// `GOODBYE` and outbox close for every remaining client. Writers
    /// finish sending everything queued before their sockets close, so
    /// no buffered result is lost.
    fn drain_and_close(&mut self) {
        let _ = self.session.flush();
        self.deliver();
        let _ = self.session.finish();
        self.deliver();
        for state in self.clients.values() {
            let shed = state.outbox.take_unreported_shed();
            if shed > 0 {
                state
                    .outbox
                    .push_control(Reply::Shed { dropped: shed }.encode());
            }
            state.outbox.push_control(Reply::Goodbye.encode());
            state.outbox.close();
        }
        self.clients.clear();
    }
}

fn push_results(outbox: &Outbox, qid: QueryId, tuples: Vec<Tuple>) {
    for chunk in tuples.chunks(RESULTS_CHUNK) {
        outbox.push_result(
            Reply::Results {
                query: qid,
                tuples: chunk.to_vec(),
            }
            .encode(),
        );
    }
}

fn validate_identifier(name: &str) -> Result<()> {
    let mut chars = name.chars();
    let ok = match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(RumorError::io(format!(
            "invalid query name `{name}`: expected an identifier"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_validation() {
        assert!(validate_identifier("watch_1").is_ok());
        assert!(validate_identifier("_x").is_ok());
        assert!(validate_identifier("").is_err());
        assert!(validate_identifier("1abc").is_err());
        assert!(validate_identifier("a b").is_err());
        assert!(validate_identifier("x;DROP").is_err());
    }
}
