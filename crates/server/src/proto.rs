//! Wire protocol: the payload structure inside [`crate::frame`] frames.
//!
//! # Message catalogue
//!
//! Client → server ([`Request`], tag byte in parentheses):
//!
//! | message | tag | fields |
//! |---|---|---|
//! | `HELLO` | `0x01` | protocol version (`u32`) |
//! | `REGISTER` | `0x02` | query name (`str`), query body (`str`) |
//! | `DROP` | `0x03` | query name (`str`) |
//! | `PUSH` | `0x04` | source id (`u32`), tuple |
//! | `PUSH_BATCH` | `0x05` | count (`u32`), then `count` × (source id, tuple) |
//! | `FLUSH` | `0x06` | — |
//! | `STATS` | `0x07` | — |
//! | `EXPLAIN` | `0x08` | — |
//! | `BYE` | `0x09` | — |
//!
//! Server → client ([`Reply`]):
//!
//! | message | tag | fields |
//! |---|---|---|
//! | `WELCOME` | `0x81` | version (`u32`), source count (`u32`), then (name `str`, id `u32`) pairs |
//! | `REGISTERED` | `0x82` | query name (`str`), query id (`u32`) |
//! | `DROPPED` | `0x83` | query name (`str`) |
//! | `RESULTS` | `0x84` | query id (`u32`), count (`u32`), then `count` tuples |
//! | `FLUSHED` | `0x85` | — |
//! | `STATS_JSON` | `0x86` | JSON document (`str`) |
//! | `EXPLAIN_TEXT` | `0x87` | rendered plan (`str`) |
//! | `ERROR` | `0x88` | message (`str`) — the [`RumorError`] display form |
//! | `SHED` | `0x89` | dropped result frames since last notice (`u64`) |
//! | `GOODBYE` | `0x8A` | — |
//!
//! # Primitive encodings
//!
//! All integers are big-endian. A `str` is a `u32` byte length followed
//! by UTF-8 bytes. A tuple is its timestamp (`u64`), an arity (`u32`),
//! and that many values; a value is a one-byte type tag — `0` null,
//! `1` int (`i64`), `2` float (`f64` bit pattern), `3` bool (one byte),
//! `4` string (`str`) — followed by the payload.
//!
//! Structured replies (`STATS_JSON`) carry the engine's own hand-rolled
//! JSON ([`StatsSnapshot::to_json`](rumor_engine::StatsSnapshot::to_json))
//! verbatim inside a `str` field, wrapped in a small envelope that adds
//! server-side counters; no JSON parser exists on either side of the
//! wire, by design.
//!
//! Decoding is strict: unknown tags, truncated fields, invalid UTF-8,
//! and trailing bytes after a complete message are all
//! [`RumorError::Io`] errors — the connection that produced them is
//! answered with `ERROR` and closed (see [`crate::ingest`]).

use rumor_types::{QueryId, Result, RumorError, SourceId, Tuple, Value};

/// Protocol version spoken by this build; `HELLO`/`WELCOME` must agree.
pub const PROTOCOL_VERSION: u32 = 1;

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the conversation; must be the first message on a connection.
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Registers a continuous query under a client-scoped name.
    Register {
        /// Client-visible query name (an identifier; unique per client).
        name: String,
        /// Query body — everything after `AS` in the query language, e.g.
        /// `SELECT * FROM s WHERE a = 3`.
        body: String,
    },
    /// Drops a query previously registered on this connection.
    Drop {
        /// The name passed to `REGISTER`.
        name: String,
    },
    /// Pushes one event into the shared session.
    Push {
        /// Source, resolved from the `WELCOME` source table.
        source: SourceId,
        /// The event.
        tuple: Tuple,
    },
    /// Pushes many events in one frame.
    PushBatch {
        /// The events, in arrival order.
        events: Vec<(SourceId, Tuple)>,
    },
    /// Barrier: makes all results of previously pushed events visible and
    /// answers with `FLUSHED` *after* those result frames.
    Flush,
    /// Requests the stats snapshot (server envelope + session JSON).
    Stats,
    /// Requests the rendered live plan.
    Explain,
    /// Graceful close: the server drains this client's buffered results,
    /// drops its queries, answers `GOODBYE`, and closes the connection.
    Bye,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to `HELLO`.
    Welcome {
        /// Server's [`PROTOCOL_VERSION`].
        version: u32,
        /// The engine's source table: name → id, for `PUSH` routing.
        sources: Vec<(String, SourceId)>,
    },
    /// Successful `REGISTER`.
    Registered {
        /// The client-visible name.
        name: String,
        /// The engine-assigned query id results are tagged with.
        query: QueryId,
    },
    /// Successful `DROP`.
    Dropped {
        /// The client-visible name.
        name: String,
    },
    /// A batch of result tuples for one registered query.
    Results {
        /// The query id from `REGISTERED`.
        query: QueryId,
        /// The result tuples, in delivery order.
        tuples: Vec<Tuple>,
    },
    /// Answer to `FLUSH`, ordered after the result frames it flushed.
    Flushed,
    /// Answer to `STATS`.
    StatsJson {
        /// `{"server": {...}, "session": <StatsSnapshot::to_json>}`.
        json: String,
    },
    /// Answer to `EXPLAIN`.
    ExplainText {
        /// [`Session::explain`](rumor_engine::Session::explain) output.
        text: String,
    },
    /// Any request-level failure; the connection stays open unless the
    /// error was a protocol violation.
    Error {
        /// Rendered [`RumorError`].
        message: String,
    },
    /// Backpressure notice: this client's outbox overflowed and `dropped`
    /// result frames were shed since the last notice.
    Shed {
        /// Number of shed result frames.
        dropped: u64,
    },
    /// Answer to `BYE` (and the final frame of a server shutdown drain).
    Goodbye,
}

// --- encoding -------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        Value::Bool(b) => {
            out.push(3);
            out.push(u8::from(*b));
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
    }
}

fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    out.extend_from_slice(&t.ts.to_be_bytes());
    out.extend_from_slice(&(t.values().len() as u32).to_be_bytes());
    for v in t.values() {
        put_value(out, v);
    }
}

impl Request {
    /// Serializes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Request::Hello { version } => {
                out.push(0x01);
                out.extend_from_slice(&version.to_be_bytes());
            }
            Request::Register { name, body } => {
                out.push(0x02);
                put_str(&mut out, name);
                put_str(&mut out, body);
            }
            Request::Drop { name } => {
                out.push(0x03);
                put_str(&mut out, name);
            }
            Request::Push { source, tuple } => {
                out.push(0x04);
                out.extend_from_slice(&source.0.to_be_bytes());
                put_tuple(&mut out, tuple);
            }
            Request::PushBatch { events } => {
                out.push(0x05);
                out.extend_from_slice(&(events.len() as u32).to_be_bytes());
                for (src, tuple) in events {
                    out.extend_from_slice(&src.0.to_be_bytes());
                    put_tuple(&mut out, tuple);
                }
            }
            Request::Flush => out.push(0x06),
            Request::Stats => out.push(0x07),
            Request::Explain => out.push(0x08),
            Request::Bye => out.push(0x09),
        }
        out
    }

    /// Parses a frame payload; strict (see module docs).
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            0x01 => Request::Hello { version: c.u32()? },
            0x02 => Request::Register {
                name: c.str()?,
                body: c.str()?,
            },
            0x03 => Request::Drop { name: c.str()? },
            0x04 => Request::Push {
                source: SourceId(c.u32()?),
                tuple: c.tuple()?,
            },
            0x05 => {
                let n = c.u32()? as usize;
                let mut events = Vec::new();
                for _ in 0..n {
                    let src = SourceId(c.u32()?);
                    let tuple = c.tuple()?;
                    events.push((src, tuple));
                }
                Request::PushBatch { events }
            }
            0x06 => Request::Flush,
            0x07 => Request::Stats,
            0x08 => Request::Explain,
            0x09 => Request::Bye,
            tag => return Err(RumorError::io(format!("unknown request tag 0x{tag:02x}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Reply {
    /// Serializes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Reply::Welcome { version, sources } => {
                out.push(0x81);
                out.extend_from_slice(&version.to_be_bytes());
                out.extend_from_slice(&(sources.len() as u32).to_be_bytes());
                for (name, id) in sources {
                    put_str(&mut out, name);
                    out.extend_from_slice(&id.0.to_be_bytes());
                }
            }
            Reply::Registered { name, query } => {
                out.push(0x82);
                put_str(&mut out, name);
                out.extend_from_slice(&query.0.to_be_bytes());
            }
            Reply::Dropped { name } => {
                out.push(0x83);
                put_str(&mut out, name);
            }
            Reply::Results { query, tuples } => {
                out.push(0x84);
                out.extend_from_slice(&query.0.to_be_bytes());
                out.extend_from_slice(&(tuples.len() as u32).to_be_bytes());
                for t in tuples {
                    put_tuple(&mut out, t);
                }
            }
            Reply::Flushed => out.push(0x85),
            Reply::StatsJson { json } => {
                out.push(0x86);
                put_str(&mut out, json);
            }
            Reply::ExplainText { text } => {
                out.push(0x87);
                put_str(&mut out, text);
            }
            Reply::Error { message } => {
                out.push(0x88);
                put_str(&mut out, message);
            }
            Reply::Shed { dropped } => {
                out.push(0x89);
                out.extend_from_slice(&dropped.to_be_bytes());
            }
            Reply::Goodbye => out.push(0x8A),
        }
        out
    }

    /// Parses a frame payload; strict (see module docs).
    pub fn decode(payload: &[u8]) -> Result<Reply> {
        let mut c = Cursor::new(payload);
        let reply = match c.u8()? {
            0x81 => {
                let version = c.u32()?;
                let n = c.u32()? as usize;
                let mut sources = Vec::new();
                for _ in 0..n {
                    let name = c.str()?;
                    let id = SourceId(c.u32()?);
                    sources.push((name, id));
                }
                Reply::Welcome { version, sources }
            }
            0x82 => Reply::Registered {
                name: c.str()?,
                query: QueryId(c.u32()?),
            },
            0x83 => Reply::Dropped { name: c.str()? },
            0x84 => {
                let query = QueryId(c.u32()?);
                let n = c.u32()? as usize;
                let mut tuples = Vec::new();
                for _ in 0..n {
                    tuples.push(c.tuple()?);
                }
                Reply::Results { query, tuples }
            }
            0x85 => Reply::Flushed,
            0x86 => Reply::StatsJson { json: c.str()? },
            0x87 => Reply::ExplainText { text: c.str()? },
            0x88 => Reply::Error { message: c.str()? },
            0x89 => Reply::Shed { dropped: c.u64()? },
            0x8A => Reply::Goodbye,
            tag => return Err(RumorError::io(format!("unknown reply tag 0x{tag:02x}"))),
        };
        c.finish()?;
        Ok(reply)
    }
}

// --- decoding cursor ------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                RumorError::io(format!(
                    "truncated message: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len().saturating_sub(self.pos)
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RumorError::io("invalid UTF-8 in string field"))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => Value::Bool(self.u8()? != 0),
            4 => Value::Str(self.str()?.into()),
            tag => return Err(RumorError::io(format!("unknown value tag {tag}"))),
        })
    }

    fn tuple(&mut self) -> Result<Tuple> {
        let ts = self.u64()?;
        let arity = self.u32()? as usize;
        let mut values = Vec::new();
        for _ in 0..arity {
            values.push(self.value()?);
        }
        Ok(Tuple::new(ts, values))
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(RumorError::io(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn roundtrip_reply(reply: Reply) {
        assert_eq!(Reply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip_req(Request::Register {
            name: "watch".into(),
            body: "SELECT * FROM s WHERE a = 3".into(),
        });
        roundtrip_req(Request::Drop {
            name: "watch".into(),
        });
        roundtrip_req(Request::Push {
            source: SourceId(2),
            tuple: Tuple::new(
                7,
                vec![
                    Value::Int(-3),
                    Value::Float(1.5),
                    Value::Bool(true),
                    Value::Str("ok".into()),
                    Value::Null,
                ],
            ),
        });
        roundtrip_req(Request::PushBatch {
            events: vec![
                (SourceId(0), Tuple::ints(0, &[1, 2])),
                (SourceId(1), Tuple::ints(1, &[3])),
            ],
        });
        roundtrip_req(Request::Flush);
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Explain);
        roundtrip_req(Request::Bye);
    }

    #[test]
    fn reply_roundtrips() {
        roundtrip_reply(Reply::Welcome {
            version: 1,
            sources: vec![("s".into(), SourceId(0)), ("t".into(), SourceId(1))],
        });
        roundtrip_reply(Reply::Registered {
            name: "watch".into(),
            query: QueryId(4),
        });
        roundtrip_reply(Reply::Dropped {
            name: "watch".into(),
        });
        roundtrip_reply(Reply::Results {
            query: QueryId(4),
            tuples: vec![Tuple::ints(3, &[1, 2, 3])],
        });
        roundtrip_reply(Reply::Flushed);
        roundtrip_reply(Reply::StatsJson {
            json: "{\"x\": 1}".into(),
        });
        roundtrip_reply(Reply::ExplainText {
            text: "plan".into(),
        });
        roundtrip_reply(Reply::Error {
            message: "nope".into(),
        });
        roundtrip_reply(Reply::Shed { dropped: 9 });
        roundtrip_reply(Reply::Goodbye);
    }

    #[test]
    fn garbage_and_truncation_rejected() {
        assert!(Request::decode(&[]).is_err(), "empty payload");
        assert!(Request::decode(&[0xFF, 1, 2]).is_err(), "unknown tag");
        assert!(Reply::decode(&[0x42]).is_err(), "unknown reply tag");
        // REGISTER with a string length pointing past the end.
        let mut buf = vec![0x02];
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        assert!(Request::decode(&buf).is_err(), "overlong string length");
        // Trailing bytes after a complete message.
        let mut buf = Request::Flush.encode();
        buf.push(0);
        assert!(Request::decode(&buf).is_err(), "trailing bytes");
        // Invalid UTF-8 in a name.
        let mut buf = vec![0x03];
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xC0, 0xC1]);
        assert!(Request::decode(&buf).is_err(), "invalid utf-8");
        // Unknown value tag inside a tuple.
        let mut buf = vec![0x04];
        buf.extend_from_slice(&0u32.to_be_bytes()); // source
        buf.extend_from_slice(&0u64.to_be_bytes()); // ts
        buf.extend_from_slice(&1u32.to_be_bytes()); // arity
        buf.push(9); // bogus value tag
        assert!(Request::decode(&buf).is_err(), "unknown value tag");
    }
}
