//! The server: listener, per-connection reader/writer threads, and the
//! glue between them and the ingest thread.
//!
//! Thread model (for `N` connected clients):
//!
//! ```text
//!  accept thread ──spawns──▶ N reader threads ──Command──▶ bounded queue
//!                            N writer threads ◀─frames── per-client Outbox
//!                                                              ▲
//!                     1 ingest thread (owns Rumor + Session) ──┘
//! ```
//!
//! Readers *only* decode and enqueue; writers *only* dequeue and send.
//! All engine work happens on the single ingest thread, so the shared
//! plan needs no locking at all.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

use crossbeam_channel::{bounded, Sender};
use rumor_engine::{Rumor, SessionConfig};
use rumor_types::{Result, RumorError};

use crate::drain::Lifecycle;
use crate::frame;
use crate::ingest::{Command, Ingest};
use crate::outbox::Outbox;
use crate::proto::Request;

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Backend for the one shared session (single-threaded by default;
    /// see [`SessionConfig`] for the parallel engines).
    pub session: SessionConfig,
    /// Capacity of the shared command queue. Readers block sending into
    /// it when full — this is the admission-control bound: a client that
    /// outruns the engine stalls its own connection, nothing else.
    pub command_queue_depth: usize,
    /// Per-client outbox bound, in result frames. A client further
    /// behind than this has its oldest queued results shed (reported via
    /// `SHED`); control frames are exempt. See [`crate::outbox`].
    pub outbox_capacity: usize,
    /// Socket write timeout for writer threads; bounds how long a
    /// graceful drain can hang on a client that stopped reading.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            session: SessionConfig::default(),
            command_queue_depth: 1024,
            outbox_capacity: 8192,
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// A running RUMOR server: one engine, one session, many clients.
///
/// Created with [`Server::spawn`] (loopback, ephemeral port — the usual
/// test/bench entry point) or [`Server::bind`]. Dropping the handle
/// performs the same graceful drain as [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    cmd_tx: Sender<Command>,
    lifecycle: Lifecycle,
    accept: Option<thread::JoinHandle<()>>,
    ingest: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:0` and serves `engine`'s registered queries.
    pub fn spawn(engine: Rumor, config: ServerConfig) -> Result<Server> {
        Server::bind("127.0.0.1:0", engine, config)
    }

    /// Binds an explicit address. The engine is optimized (if it was not
    /// already) and the shared session is built on the ingest thread
    /// before this returns, so a `Server` handle is always ready to
    /// serve.
    pub fn bind(addr: impl ToSocketAddrs, engine: Rumor, config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (cmd_tx, cmd_rx) = bounded(config.command_queue_depth.max(1));

        // Build engine + session on the ingest thread itself; surface
        // construction errors synchronously through a one-shot channel.
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let session_cfg = config.session.clone();
        let ingest = thread::Builder::new()
            .name("rumor-ingest".into())
            .spawn(move || match Ingest::new(engine, session_cfg) {
                Ok(ingest) => {
                    let _ = ready_tx.send(Ok(()));
                    ingest.run(cmd_rx);
                }
                Err(e) => {
                    let _ = ready_tx.send(Err(e));
                }
            })
            .map_err(|e| RumorError::io(format!("failed to spawn ingest thread: {e}")))?;
        match ready_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                let _ = ingest.join();
                return Err(e);
            }
            Err(_) => {
                let _ = ingest.join();
                return Err(RumorError::io("ingest thread died during startup"));
            }
        }

        let lifecycle = Lifecycle::new();
        let accept_tx = cmd_tx.clone();
        let accept_lc = lifecycle.clone();
        let accept_cfg = config.clone();
        let accept = thread::Builder::new()
            .name("rumor-accept".into())
            .spawn(move || accept_loop(listener, accept_tx, accept_lc, accept_cfg))
            .map_err(|e| RumorError::io(format!("failed to spawn accept thread: {e}")))?;

        Ok(Server {
            addr: local,
            cmd_tx,
            lifecycle,
            accept: Some(accept),
            ingest: Some(ingest),
        })
    }

    /// The bound address (useful with the ephemeral port of
    /// [`Server::spawn`]).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting, let queued commands finish, flush
    /// the session, deliver every buffered result, say `GOODBYE`, close.
    /// See [`crate::drain`] for the step-by-step protocol.
    pub fn shutdown(mut self) -> Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<()> {
        if self.accept.is_none() && self.ingest.is_none() {
            return Ok(());
        }
        self.lifecycle.request_stop(self.addr);
        if let Some(h) = self.accept.take() {
            h.join()
                .map_err(|_| RumorError::io("accept thread panicked"))?;
        }
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(h) = self.ingest.take() {
            h.join()
                .map_err(|_| RumorError::io("ingest thread panicked"))?;
        }
        self.lifecycle.join_workers();
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<Command>,
    lifecycle: Lifecycle,
    cfg: ServerConfig,
) {
    let mut next_client: u64 = 1;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if lifecycle.stopping() {
                    return;
                }
                continue;
            }
        };
        if lifecycle.stopping() {
            // The wake-up self-connection (or a late arrival): drop it.
            return;
        }
        let client = next_client;
        next_client += 1;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(cfg.write_timeout);
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let outbox = Outbox::new(cfg.outbox_capacity);
        if tx
            .send(Command::Connect {
                client,
                outbox: outbox.clone(),
            })
            .is_err()
        {
            return; // ingest gone; nothing left to serve
        }
        let writer_tx = tx.clone();
        if let Ok(h) = thread::Builder::new()
            .name(format!("rumor-writer-{client}"))
            .spawn(move || writer_loop(client, write_half, outbox, writer_tx))
        {
            lifecycle.adopt(h);
        }
        let reader_tx = tx.clone();
        if let Ok(h) = thread::Builder::new()
            .name(format!("rumor-reader-{client}"))
            .spawn(move || reader_loop(client, stream, reader_tx))
        {
            lifecycle.adopt(h);
        }
    }
}

/// Decodes frames into commands. The blocking `send` on the bounded
/// command queue is where a too-fast client stalls (admission control).
fn reader_loop(client: u64, stream: TcpStream, tx: Sender<Command>) {
    let mut reader = BufReader::new(stream);
    loop {
        match frame::read_frame(&mut reader) {
            Ok(Some(payload)) => match Request::decode(&payload) {
                Ok(req) => {
                    let bye = matches!(req, Request::Bye);
                    if tx.send(Command::Request { client, req }).is_err() {
                        return;
                    }
                    if bye {
                        // Nothing valid can follow BYE; leave the socket
                        // to the writer, which closes it after GOODBYE.
                        return;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Command::Malformed {
                        client,
                        message: e.to_string(),
                    });
                    return;
                }
            },
            Ok(None) => {
                let _ = tx.send(Command::Disconnect { client });
                return;
            }
            Err(e) => {
                // Oversized prefix, truncated frame, or transport error:
                // answer with ERROR (best effort) and drop the client.
                let _ = tx.send(Command::Malformed {
                    client,
                    message: e.to_string(),
                });
                return;
            }
        }
    }
}

/// Drains one client's outbox to its socket. Exits when the outbox is
/// closed and empty (normal teardown) or on a write failure (dead or
/// timed-out peer).
fn writer_loop(client: u64, stream: TcpStream, outbox: Outbox, tx: Sender<Command>) {
    let mut w = BufWriter::new(stream);
    while let Some(frame_bytes) = outbox.pop_blocking() {
        let wrote = frame::write_frame(&mut w, &frame_bytes)
            .and_then(|()| w.flush().map_err(RumorError::from));
        if wrote.is_err() {
            outbox.close();
            // Discard whatever is still queued so the close is prompt.
            while outbox.pop_blocking().is_some() {}
            let _ = tx.send(Command::Disconnect { client });
            break;
        }
    }
    let _ = w.flush();
    let _ = w.get_ref().shutdown(Shutdown::Both);
}
