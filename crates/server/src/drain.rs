//! Shutdown coordination: how a running server stops without losing
//! buffered results.
//!
//! The drain protocol, in order:
//!
//! 1. `Lifecycle::request_stop` flips the stop flag, then dials the
//!    server's own listening address once. The accept loop blocks in
//!    `TcpListener::accept`; the self-connection wakes it, it observes
//!    the flag and exits without handing the connection to a reader —
//!    **no new clients are admitted from this point**.
//! 2. The server sends `Command::Shutdown` down the (still live) command
//!    queue. Commands already queued ahead of it — pushes, registers,
//!    flushes from connected clients — are processed first: shutdown
//!    does not jump the admission queue.
//! 3. The ingest thread runs its drain: a `flush` barrier, a final
//!    subscription delivery, `finish`, one more delivery, then a
//!    `GOODBYE` frame and an outbox close per client
//!    ([`crate::ingest`]).
//! 4. Each writer thread drains its outbox to the socket — every
//!    buffered `RESULTS` frame is written before the `GOODBYE` — then
//!    shuts the socket down, which unblocks that connection's reader.
//! 5. `Lifecycle::join_workers` joins every reader and writer thread.
//!
//! The result: a client that connects, pushes, and then sees the server
//! shut down still receives every result the engine produced for it,
//! finished off by a `GOODBYE`, and then a clean EOF.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared stop flag plus the registry of per-connection threads.
#[derive(Clone)]
pub(crate) struct Lifecycle {
    stop: Arc<AtomicBool>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Lifecycle {
    pub(crate) fn new() -> Self {
        Lifecycle {
            stop: Arc::new(AtomicBool::new(false)),
            workers: Arc::new(Mutex::new(Vec::new())),
        }
    }

    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Step 1 of the drain: stop admitting and wake the accept loop.
    pub(crate) fn request_stop(&self, addr: SocketAddr) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept; the connection is discarded on sight.
        if let Ok(stream) = TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
            drop(stream);
        }
    }

    /// Registers a reader or writer thread for the final join.
    pub(crate) fn adopt(&self, handle: JoinHandle<()>) {
        self.workers.lock().unwrap().push(handle);
    }

    /// Step 5 of the drain: wait for every connection thread.
    pub(crate) fn join_workers(&self) {
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}
