//! Length-prefixed framing over a byte stream.
//!
//! Every message on the wire — in both directions — is one *frame*: a
//! 4-byte big-endian payload length followed by exactly that many payload
//! bytes. Framing is deliberately dumb; all structure lives in
//! [`crate::proto`]. The only policy enforced here is [`MAX_FRAME`]: a
//! length prefix larger than that is rejected *before* any allocation, so
//! a hostile or corrupted prefix (`0xFFFF_FFFF`) cannot make the server
//! reserve 4 GiB.
//!
//! EOF handling distinguishes the two disconnect shapes the protocol
//! cares about:
//!
//! * EOF **at a frame boundary** (before any prefix byte) is a clean
//!   close — [`read_frame`] returns `Ok(None)`.
//! * EOF **mid-frame** (inside the prefix or the payload) means the peer
//!   vanished mid-message — an [`RumorError::Io`] error.

use std::io::{ErrorKind, Read, Write};

use rumor_types::{Result, RumorError};

/// Upper bound on a frame payload, enforced on both send and receive.
///
/// Large enough for any plausible batch (a `PUSH_BATCH` of 100k wide
/// tuples fits comfortably), small enough that a garbage length prefix
/// cannot drive allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one length-prefixed frame. The caller is responsible for
/// flushing any buffered writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(RumorError::io(format!(
            "outgoing frame of {} bytes exceeds MAX_FRAME ({MAX_FRAME})",
            payload.len()
        )));
    }
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary; mid-frame EOF, short prefixes, and oversized length
/// prefixes all surface as [`RumorError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    // Read the first prefix byte separately so a close between frames is
    // distinguishable from a close inside one.
    loop {
        match r.read(&mut prefix[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    r.read_exact(&mut prefix[1..])
        .map_err(|e| truncated("length prefix", e))?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(RumorError::io(format!(
            "oversized frame: length prefix claims {len} bytes (max {MAX_FRAME})"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| truncated("payload", e))?;
    Ok(Some(payload))
}

fn truncated(what: &str, e: std::io::Error) -> RumorError {
    if e.kind() == ErrorKind::UnexpectedEof {
        RumorError::io(format!("truncated frame: EOF inside {what}"))
    } else {
        e.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, RumorError::Io(_)), "got {err:?}");
        assert!(err.to_string().contains("oversized"), "{err}");
    }

    #[test]
    fn truncated_prefix_and_payload_are_io_errors() {
        // One byte of a four-byte prefix.
        let err = read_frame(&mut Cursor::new(vec![0u8])).unwrap_err();
        assert!(err.to_string().contains("length prefix"), "{err}");
        // Full prefix claiming 10 bytes, only 3 present.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("payload"), "{err}");
    }

    #[test]
    fn outgoing_oversize_rejected() {
        let big = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &big).is_err());
        assert!(sink.is_empty(), "nothing written for rejected frame");
    }
}
