//! RUMOR over the network: a multi-tenant TCP front door for one shared
//! engine session.
//!
//! The paper's economics (one shared plan amortized over the whole
//! registered query population) only materialize when many independent
//! query *owners* reach one engine. This crate is that front door: a
//! long-running server ([`Server`]) multiplexing many client
//! connections onto a single [`rumor_engine::Session`], plus a blocking
//! [`Client`] speaking the same wire format.
//!
//! Deliberately std-only: `std::net::TcpListener` + threads, binary
//! frames, and the engine's hand-rolled JSON for structured replies. No
//! async runtime, no serialization framework.
//!
//! # Wire protocol
//!
//! Transport: TCP, both directions carrying length-prefixed frames — a
//! 4-byte big-endian payload length (capped at
//! [`frame::MAX_FRAME`]) then the payload ([`frame`]). Payloads are
//! tagged binary messages ([`proto`]): `HELLO` / `REGISTER` / `DROP` /
//! `PUSH` / `PUSH_BATCH` / `FLUSH` / `STATS` / `EXPLAIN` / `BYE` from
//! the client; `WELCOME` / `REGISTERED` / `DROPPED` / `RESULTS` /
//! `FLUSHED` / `STATS_JSON` / `EXPLAIN_TEXT` / `ERROR` / `SHED` /
//! `GOODBYE` from the server. See [`proto`] for the field-level layout
//! of every message.
//!
//! A conversation:
//!
//! ```text
//! client                                server
//!   │ HELLO v1                            │
//!   │ ◀── WELCOME v1 + source table       │
//!   │ REGISTER watch AS SELECT…           │  engine.execute → integrate
//!   │ ◀── REGISTERED watch = q7           │  session.update_plan (epoch swap)
//!   │ PUSH src0 @3 [1,2,3]                │  session.push
//!   │ ◀── RESULTS q7: @3 [1,2,3]          │  subscription drain → outbox
//!   │ FLUSH                               │  session.flush (barrier)
//!   │ ◀── FLUSHED                         │  ordered AFTER the results
//!   │ BYE                                 │  drop queries, drain, close
//!   │ ◀── GOODBYE, then EOF               │
//! ```
//!
//! # Architecture
//!
//! One **ingest thread** owns the engine and session outright — no
//! locks on the shared plan ([`ingest`]). Per-connection **reader
//! threads** decode frames into commands and feed a *bounded* command
//! queue; the blocking send is the admission-control point, mirroring
//! the bounded staging queues of [`rumor_engine::StreamingConfig`]. A
//! dispatcher step fans subscription results out into bounded
//! per-client **outboxes** ([`outbox`]) drained by per-connection
//! writer threads; a slow client sheds its *own* oldest results (and is
//! told so via `SHED`), never stalling the engine or its neighbours.
//! Queries registered over the wire go through the live
//! `Optimizer::integrate` path, so every tenant's queries land in the
//! one shared plan — `EXPLAIN` from any client shows the m-ops their
//! queries share with everyone else's.
//!
//! Shutdown is a graceful drain — stop accepting, flush barrier,
//! deliver all buffered results, `GOODBYE`, close — specified
//! step-by-step in [`drain`].
//!
//! # Example
//!
//! ```
//! use rumor_engine::Rumor;
//! use rumor_core::OptimizerConfig;
//! use rumor_server::{Client, Server, ServerConfig};
//! use rumor_types::Tuple;
//!
//! let mut engine = Rumor::new(OptimizerConfig::default());
//! engine.execute("CREATE STREAM s (a INT, b INT);")?;
//! let server = Server::spawn(engine, ServerConfig::default())?;
//!
//! let mut client = Client::connect(server.addr())?;
//! client.register("watch", "SELECT * FROM s WHERE a = 1")?;
//! let src = client.source("s").expect("source table from WELCOME");
//! client.push(src, Tuple::ints(0, &[1, 10]))?;
//! client.push(src, Tuple::ints(1, &[2, 20]))?;
//! client.flush()?;
//! assert_eq!(client.drain("watch"), vec![Tuple::ints(0, &[1, 10])]);
//! client.bye()?;
//! server.shutdown()?;
//! # Ok::<(), rumor_types::RumorError>(())
//! ```

pub mod client;
pub mod drain;
pub mod frame;
pub mod ingest;
pub mod outbox;
pub mod proto;
pub mod server;

pub use client::Client;
pub use proto::{Reply, Request, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig};
