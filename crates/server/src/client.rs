//! A blocking client speaking the same framing as the server.
//!
//! The client mirrors the embedded API shape on purpose: `register` ↔
//! `Rumor::add_query` + `Session::subscribe`, `push`/`push_batch` ↔
//! [`EventRuntime`](rumor_engine::EventRuntime), `flush` ↔ the portable
//! make-results-visible-now barrier, `drain` ↔
//! [`Subscription::drain`](rumor_engine::Subscription). The loopback
//! conformance suite leans on that symmetry: the same driver runs
//! against a `Client` and an embedded `Session` and asserts identical
//! results.
//!
//! Results arrive asynchronously on the one connection; any blocking
//! read (`flush`, `register`, …) buffers `RESULTS` frames it encounters
//! into per-query queues, which [`Client::drain`] empties. `FLUSHED` is
//! ordered after the result frames it flushed, so after `flush()`
//! returns, every result of previously pushed events is locally
//! drainable — the same delivery-point contract the embedded session
//! documents.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use rumor_types::{QueryId, Result, RumorError, SourceId, Tuple};

use crate::frame;
use crate::proto::{Reply, Request, PROTOCOL_VERSION};

/// Blocking connection to a [`crate::Server`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    sources: Vec<(String, SourceId)>,
    queries: HashMap<String, QueryId>,
    results: HashMap<QueryId, Vec<Tuple>>,
    shed: u64,
    goodbye: bool,
}

impl Client {
    /// Connects and completes the `HELLO`/`WELCOME` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = Client {
            reader,
            writer,
            sources: Vec::new(),
            queries: HashMap::new(),
            results: HashMap::new(),
            shed: 0,
            goodbye: false,
        };
        client.send(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match client.read_until(|r| matches!(r, Reply::Welcome { .. }))? {
            Reply::Welcome { version, sources } => {
                if version != PROTOCOL_VERSION {
                    return Err(RumorError::io(format!(
                        "protocol version mismatch: server {version}, client {PROTOCOL_VERSION}"
                    )));
                }
                client.sources = sources;
            }
            _ => unreachable!("read_until matched Welcome"),
        }
        Ok(client)
    }

    /// The server's source table (name, id), from `WELCOME`.
    pub fn sources(&self) -> &[(String, SourceId)] {
        &self.sources
    }

    /// Source id by name.
    pub fn source(&self, name: &str) -> Option<SourceId> {
        self.sources
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    }

    /// Query id of a query registered on this connection.
    pub fn query(&self, name: &str) -> Option<QueryId> {
        self.queries.get(name).copied()
    }

    /// Registers `name AS body` (e.g. body `"SELECT * FROM s WHERE a = 1"`)
    /// and returns the engine-assigned query id.
    pub fn register(&mut self, name: &str, body: &str) -> Result<QueryId> {
        self.send(&Request::Register {
            name: name.to_string(),
            body: body.to_string(),
        })?;
        match self.read_until(|r| matches!(r, Reply::Registered { .. }))? {
            Reply::Registered { name, query } => {
                self.queries.insert(name, query);
                self.results.entry(query).or_default();
                Ok(query)
            }
            _ => unreachable!("read_until matched Registered"),
        }
    }

    /// Drops a query registered on this connection. Results it produced
    /// before the drop stay locally drainable.
    pub fn drop_query(&mut self, name: &str) -> Result<()> {
        self.send(&Request::Drop {
            name: name.to_string(),
        })?;
        self.read_until(|r| matches!(r, Reply::Dropped { .. }))?;
        // The name→id mapping is kept so results the query produced
        // before the drop stay drainable; a later `register` under the
        // same name simply overwrites it.
        Ok(())
    }

    /// Pushes one event. Fire-and-forget: errors the engine reports for
    /// the push surface on the next blocking call (e.g. [`Client::flush`]).
    pub fn push(&mut self, source: SourceId, tuple: Tuple) -> Result<()> {
        self.send(&Request::Push { source, tuple })
    }

    /// Pushes a batch of events in one frame.
    pub fn push_batch(&mut self, events: Vec<(SourceId, Tuple)>) -> Result<()> {
        self.send(&Request::PushBatch { events })
    }

    /// Barrier: returns once every result of previously pushed events has
    /// been received and buffered locally.
    pub fn flush(&mut self) -> Result<()> {
        self.send(&Request::Flush)?;
        self.read_until(|r| matches!(r, Reply::Flushed))?;
        Ok(())
    }

    /// Takes the buffered results of a query registered under `name`.
    pub fn drain(&mut self, name: &str) -> Vec<Tuple> {
        match self.queries.get(name) {
            Some(&qid) => self.drain_query(qid),
            None => Vec::new(),
        }
    }

    /// Takes the buffered results of a query by id.
    pub fn drain_query(&mut self, query: QueryId) -> Vec<Tuple> {
        self.results
            .get_mut(&query)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Takes every buffered result at once, keyed by query id. Useful
    /// for fan-in consumers (the multi-tenant bench) that only need
    /// counts or bulk processing.
    pub fn take_results(&mut self) -> HashMap<QueryId, Vec<Tuple>> {
        let drained: HashMap<QueryId, Vec<Tuple>> = self
            .results
            .iter_mut()
            .map(|(q, v)| (*q, std::mem::take(v)))
            .collect();
        drained.into_iter().filter(|(_, v)| !v.is_empty()).collect()
    }

    /// The stats document: `{"server": {...}, "session": <snapshot>}`.
    pub fn stats_json(&mut self) -> Result<String> {
        self.send(&Request::Stats)?;
        match self.read_until(|r| matches!(r, Reply::StatsJson { .. }))? {
            Reply::StatsJson { json } => Ok(json),
            _ => unreachable!("read_until matched StatsJson"),
        }
    }

    /// The rendered live plan (shared m-ops annotated with runtime
    /// counters), straight from [`Session::explain`](rumor_engine::Session::explain).
    pub fn explain(&mut self) -> Result<String> {
        self.send(&Request::Explain)?;
        match self.read_until(|r| matches!(r, Reply::ExplainText { .. }))? {
            Reply::ExplainText { text } => Ok(text),
            _ => unreachable!("read_until matched ExplainText"),
        }
    }

    /// Result frames the server shed for this client (slow-consumer
    /// overflow), as reported by `SHED` notices seen so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// True once the server has announced shutdown (`GOODBYE` seen while
    /// waiting for some other reply). The final results delivered by the
    /// drain remain drainable.
    pub fn server_closed(&self) -> bool {
        self.goodbye
    }

    /// Graceful close: the server drains this client's pending results
    /// (buffered here until the handle drops), drops its queries, and
    /// confirms with `GOODBYE`.
    pub fn bye(mut self) -> Result<()> {
        self.send(&Request::Bye)?;
        self.read_until(|r| matches!(r, Reply::Goodbye))?;
        Ok(())
    }

    /// Like [`Client::bye`], but returns the final buffered results so a
    /// caller can consume everything the drain delivered.
    pub fn bye_with_results(mut self) -> Result<HashMap<QueryId, Vec<Tuple>>> {
        self.send(&Request::Bye)?;
        self.read_until(|r| matches!(r, Reply::Goodbye))?;
        Ok(std::mem::take(&mut self.results))
    }

    /// Blocks until the server announces shutdown (`GOODBYE`) or closes
    /// the connection, buffering every result frame the graceful drain
    /// delivers on the way. After this returns, [`Client::drain`] yields
    /// everything the engine produced for this client.
    pub fn wait_server_close(&mut self) -> Result<()> {
        if self.goodbye {
            return Ok(());
        }
        loop {
            let Some(payload) = frame::read_frame(&mut self.reader)? else {
                return Ok(()); // EOF without GOODBYE: abrupt but closed
            };
            match Reply::decode(&payload)? {
                Reply::Results { query, tuples } => {
                    self.results.entry(query).or_default().extend(tuples);
                }
                Reply::Shed { dropped } => self.shed += dropped,
                Reply::Goodbye => {
                    self.goodbye = true;
                    return Ok(());
                }
                _ => {}
            }
        }
    }

    fn send(&mut self, req: &Request) -> Result<()> {
        frame::write_frame(&mut self.writer, &req.encode())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads replies, buffering `RESULTS` and `SHED`, until `want`
    /// matches. `ERROR` frames fail the pending call; an EOF before the
    /// awaited reply is an [`RumorError::Io`] — unless the server is
    /// draining and sends `GOODBYE` first, which also ends the wait (the
    /// pending call then reports the shutdown).
    fn read_until(&mut self, want: impl Fn(&Reply) -> bool) -> Result<Reply> {
        loop {
            let payload = frame::read_frame(&mut self.reader)?
                .ok_or_else(|| RumorError::io("server closed the connection before replying"))?;
            let reply = Reply::decode(&payload)?;
            if want(&reply) {
                return Ok(reply);
            }
            match reply {
                Reply::Results { query, tuples } => {
                    self.results.entry(query).or_default().extend(tuples);
                }
                Reply::Shed { dropped } => self.shed += dropped,
                Reply::Error { message } => {
                    return Err(RumorError::io(format!("server error: {message}")))
                }
                Reply::Goodbye => {
                    self.goodbye = true;
                    return Err(RumorError::io(
                        "server shut down (GOODBYE received) before the awaited reply",
                    ));
                }
                // Unsolicited control replies are protocol noise; skip.
                _ => {}
            }
        }
    }
}
