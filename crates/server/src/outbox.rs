//! Bounded per-client outboxes: the dispatcher half of the fan-out.
//!
//! The ingest thread (see [`crate::ingest`]) never writes to a socket.
//! Each connection owns an `Outbox` — a bounded queue of encoded
//! frames drained by that connection's dedicated writer thread. This is
//! what keeps one slow client from stalling the shared engine:
//!
//! * **Control frames** (`REGISTERED`, `FLUSHED`, `ERROR`, `GOODBYE`, …)
//!   always enqueue. They are few, small, and request-driven, so they
//!   cannot grow without bound.
//! * **Result frames** count against the configured capacity. When a
//!   client's outbox is full — its writer is blocked on a socket the
//!   client is not reading — the *oldest queued result frame for that
//!   client* is shed to make room and a per-client shed counter is
//!   bumped. The engine thread never blocks; other clients never notice.
//!   Shedding is reported back to the affected client as a `SHED` notice
//!   at its next flush barrier, and in the `STATS` server envelope.
//!
//! This mirrors the bounded-queue admission semantics the in-process
//! engines already use ([`rumor_engine::StreamingConfig`]'s
//! `queue_depth`): the bound is per-participant and overload is resolved
//! locally, at the edge, not by backpressuring the shared plan.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// An encoded frame queued for one client, tagged with its shed class.
#[derive(Debug)]
pub(crate) enum OutFrame {
    /// Never shed.
    Control(Vec<u8>),
    /// Counts against capacity; oldest shed first on overflow.
    Result(Vec<u8>),
}

#[derive(Debug, Default)]
struct State {
    frames: VecDeque<OutFrame>,
    results_queued: usize,
    /// Total result frames shed since the connection opened.
    shed_total: u64,
    /// Result frames shed since the last `SHED` notice was emitted.
    shed_unreported: u64,
    closed: bool,
}

/// Handle to one client's bounded outbox; cloned between the ingest
/// thread (producer) and the connection's writer thread (consumer).
#[derive(Debug, Clone)]
pub(crate) struct Outbox {
    shared: Arc<Shared>,
    capacity: usize,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    cond: Condvar,
}

impl Outbox {
    pub(crate) fn new(capacity: usize) -> Self {
        Outbox {
            shared: Arc::new(Shared {
                state: Mutex::new(State::default()),
                cond: Condvar::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a control frame (unbounded, never shed).
    pub(crate) fn push_control(&self, frame: Vec<u8>) {
        let mut st = self.shared.state.lock().unwrap();
        if st.closed {
            return;
        }
        st.frames.push_back(OutFrame::Control(frame));
        self.shared.cond.notify_one();
    }

    /// Enqueues a result frame, shedding the oldest queued result frame
    /// if the client is already `capacity` frames behind.
    pub(crate) fn push_result(&self, frame: Vec<u8>) {
        let mut st = self.shared.state.lock().unwrap();
        if st.closed {
            return;
        }
        if st.results_queued >= self.capacity {
            if let Some(idx) = st
                .frames
                .iter()
                .position(|f| matches!(f, OutFrame::Result(_)))
            {
                st.frames.remove(idx);
                st.results_queued -= 1;
                st.shed_total += 1;
                st.shed_unreported += 1;
            }
        }
        st.frames.push_back(OutFrame::Result(frame));
        st.results_queued += 1;
        self.shared.cond.notify_one();
    }

    /// Result frames shed since the last call; used to emit `SHED`
    /// notices at flush barriers.
    pub(crate) fn take_unreported_shed(&self) -> u64 {
        let mut st = self.shared.state.lock().unwrap();
        std::mem::take(&mut st.shed_unreported)
    }

    /// Lifetime shed count (for the `STATS` server envelope).
    pub(crate) fn shed_total(&self) -> u64 {
        self.shared.state.lock().unwrap().shed_total
    }

    /// Marks the outbox closed: the writer drains what is queued, then
    /// exits and closes the socket. Producers become no-ops.
    pub(crate) fn close(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.closed = true;
        self.shared.cond.notify_all();
    }

    /// Blocks until a frame is available or the outbox is closed *and*
    /// drained. `None` means the writer should exit.
    pub(crate) fn pop_blocking(&self) -> Option<Vec<u8>> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(frame) = st.frames.pop_front() {
                let bytes = match frame {
                    OutFrame::Control(b) => b,
                    OutFrame::Result(b) => {
                        st.results_queued -= 1;
                        b
                    }
                };
                return Some(bytes);
            }
            if st.closed {
                return None;
            }
            st = self.shared.cond.wait(st).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_frames_never_shed() {
        let ob = Outbox::new(2);
        for i in 0..10u8 {
            ob.push_control(vec![i]);
        }
        let mut seen = Vec::new();
        ob.close();
        while let Some(f) = ob.pop_blocking() {
            seen.push(f[0]);
        }
        assert_eq!(seen, (0..10).collect::<Vec<u8>>());
        assert_eq!(ob.shed_total(), 0);
    }

    #[test]
    fn result_overflow_sheds_oldest_result_only() {
        let ob = Outbox::new(2);
        ob.push_result(vec![1]);
        ob.push_control(vec![100]);
        ob.push_result(vec![2]);
        ob.push_result(vec![3]); // capacity 2 → sheds [1]
        assert_eq!(ob.shed_total(), 1);
        assert_eq!(ob.take_unreported_shed(), 1);
        assert_eq!(ob.take_unreported_shed(), 0);
        ob.close();
        let mut seen = Vec::new();
        while let Some(f) = ob.pop_blocking() {
            seen.push(f[0]);
        }
        // Control frame kept its queue position; oldest result gone.
        assert_eq!(seen, vec![100, 2, 3]);
    }

    #[test]
    fn close_drains_then_stops() {
        let ob = Outbox::new(8);
        ob.push_result(vec![7]);
        ob.close();
        assert_eq!(ob.pop_blocking(), Some(vec![7]));
        assert_eq!(ob.pop_blocking(), None);
        // Pushes after close are dropped.
        ob.push_result(vec![9]);
        assert_eq!(ob.pop_blocking(), None);
    }
}
