//! Malformed-input hardening: hostile or broken bytes on the wire must
//! produce a clean `ERROR` reply or connection close — never a panic,
//! and never a wedged ingest thread. Every abuse case ends by proving
//! the server still serves a well-behaved client.

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use rumor_core::OptimizerConfig;
use rumor_engine::Rumor;
use rumor_server::frame::{read_frame, write_frame};
use rumor_server::{Client, Reply, Request, Server, ServerConfig, PROTOCOL_VERSION};
use rumor_types::Tuple;

fn spawn_server() -> Server {
    let mut engine = Rumor::new(OptimizerConfig::default());
    engine
        .execute("CREATE STREAM s (a INT, b INT);")
        .expect("seed stream");
    Server::spawn(engine, ServerConfig::default()).expect("spawn server")
}

/// Proves the ingest thread still works: register, push, flush, drain.
fn assert_still_serving(server: &Server) {
    let mut client = Client::connect(server.addr()).expect("connect after abuse");
    client
        .register("probe", "SELECT * FROM s WHERE a = 1")
        .expect("register after abuse");
    let src = client.source("s").expect("source table");
    client.push(src, Tuple::ints(0, &[1, 7])).expect("push");
    client.flush().expect("flush");
    assert_eq!(client.drain("probe"), vec![Tuple::ints(0, &[1, 7])]);
    client.bye().expect("bye");
}

fn raw_connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("raw connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Reads server replies until EOF; returns them. Panics on a read that
/// is neither a frame nor EOF (i.e. the server must close cleanly).
fn read_replies_until_eof(stream: &mut TcpStream) -> Vec<Reply> {
    let mut replies = Vec::new();
    loop {
        match read_frame(stream) {
            Ok(Some(payload)) => replies.push(Reply::decode(&payload).expect("decodable reply")),
            Ok(None) => return replies,
            Err(e) => panic!("expected clean close, got {e}"),
        }
    }
}

#[test]
fn garbage_payload_gets_error_then_close() {
    let server = spawn_server();
    let mut stream = raw_connect(&server);
    // A well-formed frame whose payload is an unknown tag + noise.
    write_frame(&mut stream, &[0xEE, 1, 2, 3, 4]).unwrap();
    stream.flush().unwrap();
    let replies = read_replies_until_eof(&mut stream);
    assert!(
        replies.iter().any(
            |r| matches!(r, Reply::Error { message } if message.contains("unknown request tag"))
        ),
        "expected an ERROR reply, got {replies:?}"
    );
    assert_still_serving(&server);
}

#[test]
fn oversized_length_prefix_closes_connection() {
    let server = spawn_server();
    let mut stream = raw_connect(&server);
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let replies = read_replies_until_eof(&mut stream);
    assert!(
        replies
            .iter()
            .any(|r| matches!(r, Reply::Error { message } if message.contains("oversized"))),
        "expected an oversized-frame ERROR, got {replies:?}"
    );
    assert_still_serving(&server);
}

#[test]
fn truncated_frame_then_half_close_is_rejected() {
    let server = spawn_server();
    let mut stream = raw_connect(&server);
    // Prefix claims 100 bytes; send 10 and half-close the write side.
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(&[0u8; 10]).unwrap();
    stream.flush().unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let replies = read_replies_until_eof(&mut stream);
    assert!(
        replies
            .iter()
            .any(|r| matches!(r, Reply::Error { message } if message.contains("truncated"))),
        "expected a truncated-frame ERROR, got {replies:?}"
    );
    assert_still_serving(&server);
}

#[test]
fn mid_frame_disconnect_does_not_wedge_ingest() {
    let server = spawn_server();
    {
        let mut stream = raw_connect(&server);
        stream.write_all(&1000u32.to_be_bytes()).unwrap();
        stream.write_all(&[0xAB; 17]).unwrap();
        stream.flush().unwrap();
        // Drop the socket mid-frame: reset, no goodbye.
    }
    assert_still_serving(&server);
}

#[test]
fn requests_before_hello_are_rejected() {
    let server = spawn_server();
    let mut stream = raw_connect(&server);
    write_frame(&mut stream, &Request::Flush.encode()).unwrap();
    stream.flush().unwrap();
    let payload = read_frame(&mut stream)
        .expect("reply readable")
        .expect("reply frame");
    match Reply::decode(&payload).expect("decodable") {
        Reply::Error { message } => assert!(message.contains("HELLO"), "{message}"),
        other => panic!("expected ERROR, got {other:?}"),
    }
    // The connection stays usable: HELLO now, then normal traffic.
    write_frame(
        &mut stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .unwrap();
    stream.flush().unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("welcome frame");
    assert!(matches!(
        Reply::decode(&payload).unwrap(),
        Reply::Welcome { .. }
    ));
    assert_still_serving(&server);
}

#[test]
fn statement_smuggling_in_register_body_is_rejected() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let err = client
        .register(
            "evil",
            "SELECT * FROM s WHERE a = 1; QUERY q2 AS SELECT * FROM s",
        )
        .expect_err("multi-statement body must be rejected");
    assert!(err.to_string().contains(";"), "{err}");
    let err = client
        .register("1bad name", "SELECT * FROM s WHERE a = 1")
        .expect_err("non-identifier name must be rejected");
    assert!(err.to_string().contains("identifier"), "{err}");
    // Same connection still serves valid registrations.
    client
        .register("fine", "SELECT * FROM s WHERE a = 1")
        .expect("valid registration after rejected ones");
    client.bye().expect("bye");
    assert_still_serving(&server);
}

#[test]
fn bad_engine_input_reports_without_dropping_connection() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    // Unknown stream: the engine's parse/plan error must come back as an
    // ERROR reply surfaced by the pending call, with the session intact.
    let err = client
        .register("ghost", "SELECT * FROM no_such_stream WHERE a = 1")
        .expect_err("unknown stream must fail");
    assert!(err.to_string().contains("server error"), "{err}");
    client
        .register("ok", "SELECT * FROM s WHERE a = 2")
        .expect("register after engine error");
    let src = client.source("s").unwrap();
    client.push(src, Tuple::ints(0, &[2, 5])).unwrap();
    client.flush().unwrap();
    assert_eq!(client.drain("ok"), vec![Tuple::ints(0, &[2, 5])]);
    client.bye().unwrap();
}
