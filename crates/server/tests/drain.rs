//! Graceful-drain contract: a server shutdown must deliver every
//! buffered subscription result to every connected client, finish with
//! `GOODBYE`, and only then close the sockets.

use rumor_core::OptimizerConfig;
use rumor_engine::Rumor;
use rumor_server::{Client, Server, ServerConfig};
use rumor_types::Tuple;

fn spawn_server() -> Server {
    let mut engine = Rumor::new(OptimizerConfig::default());
    engine
        .execute("CREATE STREAM s (a INT, b INT);")
        .expect("seed stream");
    Server::spawn(engine, ServerConfig::default()).expect("spawn server")
}

#[test]
fn shutdown_drains_buffered_results_to_all_clients() {
    let server = spawn_server();

    // Three clients, each watching a different selection.
    let mut clients: Vec<Client> = (0..3)
        .map(|i| {
            let mut c = Client::connect(server.addr()).expect("connect");
            c.register("watch", &format!("SELECT * FROM s WHERE a = {i}"))
                .expect("register");
            c
        })
        .collect();

    // One of them feeds events for everyone; nobody flushes, so results
    // sit buffered server-side (outboxes + kernel buffers) at shutdown.
    let src = clients[0].source("s").expect("source");
    let events: Vec<Tuple> = (0..30)
        .map(|t| Tuple::ints(t, &[(t % 3) as i64, t as i64]))
        .collect();
    for e in &events {
        clients[0].push(src, e.clone()).expect("push");
    }

    // Give the pushes a moment to clear the command queue, then drain.
    // (shutdown() itself is the barrier: the SHUTDOWN command queues
    // behind the pushes and the ingest flushes before closing.)
    server.shutdown().expect("graceful shutdown");

    for (i, client) in clients.iter_mut().enumerate() {
        client.wait_server_close().expect("drain to GOODBYE");
        assert!(client.server_closed(), "client {i} missed GOODBYE");
        let got = client.drain("watch");
        let want: Vec<Tuple> = events
            .iter()
            .filter(|t| t.value(0) == Some(&rumor_types::Value::Int(i as i64)))
            .cloned()
            .collect();
        assert_eq!(got, want, "client {i} lost buffered results in the drain");
        assert_eq!(client.shed(), 0, "client {i} shed results unexpectedly");
    }
}

#[test]
fn clients_connected_at_shutdown_get_goodbye_even_when_idle() {
    let server = spawn_server();
    let mut idle = Client::connect(server.addr()).expect("connect");
    server.shutdown().expect("shutdown");
    idle.wait_server_close().expect("goodbye for idle client");
    assert!(idle.server_closed());
}

#[test]
fn bye_returns_results_produced_but_not_yet_flushed() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .register("w", "SELECT * FROM s WHERE a = 4")
        .expect("register");
    let src = client.source("s").unwrap();
    client.push(src, Tuple::ints(9, &[4, 44])).unwrap();
    // No flush: BYE itself must barrier and hand the result back.
    let results = client.bye_with_results().expect("bye");
    let all: Vec<Tuple> = results.into_values().flatten().collect();
    assert_eq!(all, vec![Tuple::ints(9, &[4, 44])]);
    server.shutdown().expect("shutdown");
}
