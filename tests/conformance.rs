//! Differential cross-engine conformance harness.
//!
//! The load-bearing invariant of the whole optimizer/runtime stack (as in
//! the multi-query-optimization literature: the shared plan must be a
//! drop-in replacement for naive per-query execution) is that **every
//! engine mode produces identical results**. This harness pins that down
//! as one table-driven matrix instead of per-mode ad-hoc tests:
//!
//! * **modes** — per-event push, `push_batch` (channel-run batched /
//!   hybrid), the shard-local-stage pipelined runner, the one-shot
//!   sharded runtime, and the persistent streaming shard pool (several
//!   worker counts, batch sizes, and lifecycle interleavings);
//! * **workloads** — every partitioning verdict (stateless, keyed,
//!   pinned, pinned-with-stateless-siblings) plus edge inputs (empty,
//!   single event, timestamp ties);
//! * **oracle** — results are canonicalized to a `(timestamp, query,
//!   rendered tuple)`-sorted vector, a total order, so every mode must
//!   match the per-event reference *byte for byte*.
//!
//! A generator-driven propcheck runs random query mixes and event streams
//! through the same matrix, and a lifecycle propcheck exercises the
//! streaming pool's `push`/`push_batch`/`flush` interleavings (batch
//! sizes 0 and 1, tied timestamps included) against one-shot batching.

use proptest::prelude::*;

use rumor::{
    AggFunc, AggSpec, CollectingSink, ExecutablePlan, IterSpec, LogicalPlan, Optimizer,
    OptimizerConfig, PinScope, PlanGraph, Predicate, QueryId, Schema, SeqSpec, ShardedRuntime,
    SourceRoute, StreamingConfig, StreamingShardedRuntime, Tuple, Verdict,
};
use rumor_engine::{run_pipelined_config, PipelineConfig};
use rumor_expr::{CmpOp, Expr, NamedExpr, SchemaMap};
use rumor_types::SourceId;

/// Canonical result form: `(ts, query, rendered tuple)`, fully sorted — a
/// total order, so two modes agree iff their canonical vectors are
/// byte-identical.
fn canonical(results: Vec<(QueryId, Tuple)>) -> Vec<(u64, u32, String)> {
    let mut v: Vec<(u64, u32, String)> = results
        .into_iter()
        .map(|(q, t)| (t.ts, q.0, t.to_string()))
        .collect();
    v.sort();
    v
}

/// One engine mode of the conformance matrix.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Single-threaded per-event push — the reference oracle.
    PerEvent,
    /// `ExecutablePlan::push_batch`: channel-run batched / hybrid drain.
    PushBatch,
    /// The pipelined runner rebuilt on shard-local stages.
    Pipelined { stages: usize, batch: usize },
    /// One-shot sharded runtime (scoped threads per batch call).
    Sharded { n: usize },
    /// Persistent streaming shard pool, whole input in one `push_batch`.
    Streaming { n: usize, batch: usize },
    /// Streaming pool fed in small chunks with `flush` barriers between.
    StreamingChunked { n: usize, chunk: usize },
}

/// The full matrix every workload must survive. `PerEvent` first: it is
/// the reference everything else is compared against.
const MODES: &[Mode] = &[
    Mode::PerEvent,
    Mode::PushBatch,
    Mode::Pipelined {
        stages: 3,
        batch: 16,
    },
    Mode::Sharded { n: 1 },
    Mode::Sharded { n: 2 },
    Mode::Sharded { n: 4 },
    Mode::Sharded { n: 7 },
    Mode::Streaming { n: 2, batch: 1 },
    Mode::Streaming { n: 4, batch: 64 },
    Mode::StreamingChunked { n: 3, chunk: 17 },
];

fn run_mode(plan: &PlanGraph, events: &[(SourceId, Tuple)], mode: Mode) -> Vec<(u64, u32, String)> {
    match mode {
        Mode::PerEvent => {
            let mut exec = ExecutablePlan::new(plan).unwrap();
            let mut sink = CollectingSink::default();
            for (src, t) in events {
                exec.push(*src, t.clone(), &mut sink).unwrap();
            }
            canonical(sink.results)
        }
        Mode::PushBatch => {
            let mut exec = ExecutablePlan::new(plan).unwrap();
            let mut sink = CollectingSink::default();
            exec.push_batch(events, &mut sink).unwrap();
            canonical(sink.results)
        }
        Mode::Pipelined { stages, batch } => {
            let results = run_pipelined_config(
                plan,
                events,
                &PipelineConfig {
                    stages,
                    batch_size: batch,
                },
            )
            .unwrap();
            canonical(results)
        }
        Mode::Sharded { n } => {
            let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(plan, n).unwrap();
            rt.push_batch(events).unwrap();
            canonical(rt.finish().results)
        }
        Mode::Streaming { n, batch } => {
            let mut rt: StreamingShardedRuntime<CollectingSink> =
                StreamingShardedRuntime::with_config(
                    plan,
                    n,
                    StreamingConfig {
                        batch_size: batch,
                        queue_depth: 2,
                    },
                )
                .unwrap();
            rt.push_batch(events).unwrap();
            canonical(rt.finish().unwrap().results)
        }
        Mode::StreamingChunked { n, chunk } => {
            let mut rt: StreamingShardedRuntime<CollectingSink> =
                StreamingShardedRuntime::new(plan, n).unwrap();
            for c in events.chunks(chunk.max(1)) {
                rt.push_batch(c).unwrap();
                rt.flush().unwrap();
            }
            canonical(rt.finish().unwrap().results)
        }
    }
}

/// Per-query result sequences in arrival order — the stricter contract
/// the single-threaded entry points carry on top of the canonical
/// multiset: `push_batch` promises results *identical to per-event
/// order*, not merely the same multiset.
fn per_query_ordered(results: &[(QueryId, Tuple)]) -> Vec<(u32, Vec<String>)> {
    let mut by_query: std::collections::BTreeMap<u32, Vec<String>> = Default::default();
    for (q, t) in results {
        by_query.entry(q.0).or_default().push(t.to_string());
    }
    by_query.into_iter().collect()
}

/// Asserts every mode of the matrix reproduces the per-event reference
/// byte for byte on the given workload, and that `push_batch` (the
/// single-threaded batched entry point) additionally preserves exact
/// per-query result order.
fn assert_conformance(name: &str, plan: &PlanGraph, events: &[(SourceId, Tuple)]) {
    let reference = run_mode(plan, events, MODES[0]);
    for &mode in &MODES[1..] {
        let got = run_mode(plan, events, mode);
        assert_eq!(
            got,
            reference,
            "workload `{name}` diverged under {mode:?} ({} events)",
            events.len()
        );
    }
    assert_push_batch_order(name, plan, events);
}

/// The documented `push_batch` order contract, uncanonicalized: per-query
/// result sequences must equal the per-event engine's exactly.
fn assert_push_batch_order(name: &str, plan: &PlanGraph, events: &[(SourceId, Tuple)]) {
    let mut per_event = ExecutablePlan::new(plan).unwrap();
    let mut want = CollectingSink::default();
    for (src, t) in events {
        per_event.push(*src, t.clone(), &mut want).unwrap();
    }
    let mut batched = ExecutablePlan::new(plan).unwrap();
    let mut got = CollectingSink::default();
    batched.push_batch(events, &mut got).unwrap();
    assert_eq!(
        per_query_ordered(&got.results),
        per_query_ordered(&want.results),
        "workload `{name}`: push_batch broke per-query result order"
    );
}

// ----------------------------------------------------------------------
// The deterministic workload table.
// ----------------------------------------------------------------------

/// Standard source layout: every workload builder registers the same four
/// 3-int sources so event generators can be shared.
fn sources(plan: &mut PlanGraph) -> Vec<SourceId> {
    ["S", "T", "U", "A"]
        .iter()
        .map(|n| plan.add_source(*n, Schema::ints(3), None).unwrap())
        .collect()
}

fn optimized(queries: &[LogicalPlan]) -> (PlanGraph, Vec<SourceId>) {
    let mut plan = PlanGraph::new();
    let srcs = sources(&mut plan);
    for q in queries {
        plan.add_query(q).unwrap();
    }
    Optimizer::new(OptimizerConfig::default())
        .optimize(&mut plan)
        .unwrap();
    plan.validate().unwrap();
    (plan, srcs)
}

/// Deterministic interleaved input over all four sources, strictly
/// increasing timestamps.
fn interleaved(srcs: &[SourceId], n: u64) -> Vec<(SourceId, Tuple)> {
    (0..n)
        .map(|ts| {
            let src = srcs[(ts % srcs.len() as u64) as usize];
            (
                src,
                Tuple::ints(ts, &[(ts % 4) as i64, (ts % 3) as i64, (ts % 5) as i64]),
            )
        })
        .collect()
}

/// Same interleave but every timestamp occurs twice (ties on every pair).
fn tied(srcs: &[SourceId], n: u64) -> Vec<(SourceId, Tuple)> {
    (0..n)
        .map(|i| {
            let src = srcs[(i % srcs.len() as u64) as usize];
            let ts = i / 2;
            (
                src,
                Tuple::ints(ts, &[(i % 4) as i64, (i % 3) as i64, (i % 5) as i64]),
            )
        })
        .collect()
}

fn equi_seq(window: u64) -> LogicalPlan {
    LogicalPlan::source("S")
        .select(Predicate::attr_eq_const(1, 1i64))
        .followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                window,
            },
        )
}

fn unkeyed_seq(window: u64) -> LogicalPlan {
    LogicalPlan::source("S").followed_by(
        LogicalPlan::source("T"),
        SeqSpec {
            predicate: Predicate::cmp(CmpOp::Lt, Expr::col(2), Expr::rcol(2)),
            window,
        },
    )
}

fn keyed_iterate(window: u64) -> LogicalPlan {
    LogicalPlan::source("S")
        .select(Predicate::attr_eq_const(1, 0i64))
        .iterate(
            LogicalPlan::source("T"),
            IterSpec {
                filter: Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
                rebind: Predicate::and(vec![
                    Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
                ]),
                rebind_map: SchemaMap::new(vec![
                    NamedExpr::new("a0", Expr::col(0)),
                    NamedExpr::new("a1", Expr::rcol(1)),
                    NamedExpr::new("a2", Expr::col(2)),
                ]),
                window,
            },
        )
}

fn aggregate(group_by: Vec<usize>, window: u64) -> LogicalPlan {
    LogicalPlan::source("A").aggregate(AggSpec {
        func: AggFunc::Sum,
        input: Expr::col(2),
        group_by,
        window,
    })
}

/// One named workload: an optimized plan plus its prepared input.
type Workload = (&'static str, PlanGraph, Vec<(SourceId, Tuple)>);

/// The deterministic workload table: every partitioning verdict, the
/// pinned-split shape, a mixed plan, and edge inputs.
fn workload_table() -> Vec<Workload> {
    let mut table = Vec::new();

    let (plan, srcs) = optimized(&[
        LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
        LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 2i64)),
        LogicalPlan::source("U").select(Predicate::attr_eq_const(1, 0i64)),
    ]);
    let events = interleaved(&srcs, 160);
    table.push(("shared_selects", plan, events));

    let (plan, srcs) = optimized(&[
        LogicalPlan::source("U")
            .select(Predicate::attr_eq_const(0, 1i64))
            .project(SchemaMap::new(vec![NamedExpr::new(
                "x",
                Expr::col(1).mul(Expr::lit(3i64)),
            )])),
        LogicalPlan::source("U")
            .select(Predicate::attr_eq_const(0, 1i64))
            .select(Predicate::attr_eq_const(1, 1i64)),
    ]);
    let events = interleaved(&srcs, 160);
    table.push(("select_project_chain", plan, events));

    let (plan, srcs) = optimized(&[equi_seq(12), equi_seq(25)]);
    let events = interleaved(&srcs, 200);
    table.push(("keyed_sequences", plan, events));

    let (plan, srcs) = optimized(&[keyed_iterate(18)]);
    let events = interleaved(&srcs, 160);
    table.push(("keyed_iterate", plan, events));

    let (plan, srcs) = optimized(&[aggregate(vec![0], 9), aggregate(vec![0, 1], 14)]);
    let events = interleaved(&srcs, 160);
    table.push(("grouped_aggregates", plan, events));

    let (plan, srcs) = optimized(&[aggregate(Vec::new(), 11)]);
    let events = interleaved(&srcs, 120);
    table.push(("ungrouped_aggregate_pinned", plan, events));

    let (plan, srcs) = optimized(&[unkeyed_seq(10)]);
    let events = interleaved(&srcs, 160);
    table.push(("unkeyed_sequence_pinned", plan, events));

    // The pinned-split shape: a pinned stateful subgraph plus stateless
    // sibling queries (and a direct source tap) on the same source.
    let (plan, srcs) = optimized(&[
        unkeyed_seq(10),
        LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)),
        LogicalPlan::source("S"),
    ]);
    let events = interleaved(&srcs, 160);
    table.push(("pinned_split_mixed", plan, events));

    // All verdicts in one plan.
    let (plan, srcs) = optimized(&[
        LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
        equi_seq(15),
        unkeyed_seq(8),
        aggregate(vec![0], 10),
    ]);
    let events = interleaved(&srcs, 240);
    table.push(("all_verdicts_mixed", plan, events));

    // Tied timestamps void the hybrid drain's exactness proof chunk-wise
    // and exercise the per-event fallback under every parallel mode.
    let (plan, srcs) = optimized(&[equi_seq(12), aggregate(vec![0], 7)]);
    let events = tied(&srcs, 200);
    table.push(("timestamp_ties", plan, events));

    let (plan, _) = optimized(&[equi_seq(10), LogicalPlan::source("U")]);
    table.push(("empty_input", plan, Vec::new()));

    let (plan, srcs) = optimized(&[LogicalPlan::source("U"), equi_seq(10)]);
    let events = vec![(srcs[2], Tuple::ints(0, &[1, 1, 1]))];
    table.push(("single_event", plan, events));

    table
}

#[test]
fn conformance_matrix_all_workloads_all_modes() {
    for (name, plan, events) in workload_table() {
        assert_conformance(name, &plan, &events);
    }
}

/// The split verdict itself is part of the contract: the mixed pinned
/// workload must report a stateful-subgraph pin and still produce
/// identical results at every worker count.
#[test]
fn pinned_split_reports_subgraph_verdict_and_conforms() {
    let (plan, srcs) = optimized(&[
        unkeyed_seq(10),
        LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)),
    ]);
    let events = interleaved(&srcs, 200);
    let reference = run_mode(&plan, &events, Mode::PerEvent);
    for n in [1usize, 2, 4, 7] {
        let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, n).unwrap();
        let scheme = rt.scheme();
        let pinned: Vec<_> = scheme
            .components()
            .iter()
            .filter(|c| c.verdict == Verdict::Pinned)
            .collect();
        assert_eq!(pinned.len(), 1);
        assert_eq!(pinned[0].pin_scope, Some(PinScope::StatefulSubgraph));
        assert_eq!(*scheme.route(srcs[0]), SourceRoute::PinnedSplit);
        assert_eq!(*scheme.route(srcs[1]), SourceRoute::Pinned);
        rt.push_batch(&events).unwrap();
        assert_eq!(rt.events_in(), events.len() as u64);
        assert_eq!(
            canonical(rt.finish().results),
            reference,
            "one-shot sharded n={n}"
        );

        let mut rt: StreamingShardedRuntime<CollectingSink> = StreamingShardedRuntime::with_config(
            &plan,
            n,
            StreamingConfig {
                batch_size: 13,
                queue_depth: 2,
            },
        )
        .unwrap();
        rt.push_batch(&events).unwrap();
        assert_eq!(
            canonical(rt.finish().unwrap().results),
            reference,
            "streaming n={n}"
        );
    }
}

/// The mixed plan's scheme exposes the verdict spectrum at once and the
/// routes follow it (moved from the retired per-mode sharded test file).
#[test]
fn mixed_plan_scheme_has_all_three_verdicts() {
    let (plan, srcs) = optimized(&[
        LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
        equi_seq(10),
        aggregate(Vec::new(), 10),
    ]);
    let rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 4).unwrap();
    let scheme = rt.scheme();
    assert_eq!(scheme.count(Verdict::Stateless), 1);
    assert_eq!(scheme.count(Verdict::Keyed), 1);
    assert_eq!(scheme.count(Verdict::Pinned), 1);
    assert_eq!(*scheme.route(srcs[2]), SourceRoute::RoundRobin); // U
    assert_eq!(*scheme.route(srcs[0]), SourceRoute::Key(vec![0])); // S
    assert_eq!(*scheme.route(srcs[1]), SourceRoute::Key(vec![0])); // T
    assert_eq!(*scheme.route(srcs[3]), SourceRoute::Pinned); // A: ungrouped agg
    for c in scheme.components() {
        match c.verdict {
            Verdict::Pinned => assert_eq!(c.pin_scope, Some(PinScope::WholeComponent)),
            _ => assert_eq!(c.pin_scope, None),
        }
    }
    assert!(scheme.is_parallelizable());
}

// ----------------------------------------------------------------------
// Generator-driven oracle: random query mixes and event streams through
// the same matrix.
// ----------------------------------------------------------------------

fn any_query() -> impl Strategy<Value = LogicalPlan> {
    let sel = (0usize..3, 0i64..4)
        .prop_map(|(a, c)| LogicalPlan::source("U").select(Predicate::attr_eq_const(a, c)));
    let proj = (0i64..4, 1i64..4).prop_map(|(c, k)| {
        LogicalPlan::source("U")
            .select(Predicate::attr_eq_const(0, c))
            .project(SchemaMap::new(vec![NamedExpr::new(
                "x",
                Expr::col(1).mul(Expr::lit(k)),
            )]))
    });
    let seq = (1u64..25).prop_map(equi_seq);
    let mu = (1u64..20).prop_map(keyed_iterate);
    let pinned = (1u64..15).prop_map(unkeyed_seq);
    let agg = (
        prop_oneof![Just(vec![0usize]), Just(vec![0usize, 1]), Just(Vec::new())],
        1u64..20,
    )
        .prop_map(|(g, w)| aggregate(g, w));
    prop_oneof![sel, proj, seq, mu, pinned, agg]
}

/// Raw events: source selector, advance-timestamp flag (false ⇒ tie), and
/// attribute values.
fn events_strategy() -> impl Strategy<Value = Vec<(usize, bool, Vec<i64>)>> {
    prop::collection::vec(
        (0usize..4, any::<bool>(), prop::collection::vec(0i64..4, 3)),
        0..120,
    )
}

fn to_events(raw: &[(usize, bool, Vec<i64>)], srcs: &[SourceId]) -> Vec<(SourceId, Tuple)> {
    let mut ts = 0u64;
    raw.iter()
        .map(|(which, advance, vals)| {
            if *advance {
                ts += 1;
            }
            (srcs[*which % srcs.len()], Tuple::ints(ts, vals))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random workloads through the full mode matrix: every mode must be
    /// byte-identical to the per-event reference.
    #[test]
    fn random_workloads_conform_across_all_modes(
        queries in prop::collection::vec(any_query(), 1..7),
        raw in events_strategy(),
    ) {
        let (plan, srcs) = optimized(&queries);
        let events = to_events(&raw, &srcs);
        let reference = run_mode(&plan, &events, MODES[0]);
        for &mode in &MODES[1..] {
            let got = run_mode(&plan, &events, mode);
            prop_assert_eq!(&got, &reference, "mode {:?} diverged", mode);
        }
        assert_push_batch_order("random", &plan, &events);
    }
}

// ----------------------------------------------------------------------
// Dynamic query lifecycle: churn scripts (add → push → add → push →
// remove → push) against a fresh-compile oracle, across engine modes.
//
// The oracle leans on the load-bearing invariant the rest of this file
// pins (the shared plan is a drop-in replacement for naive per-query
// execution): a query's results are independent of which other queries
// share the plan. So the reference for each query that ever lived is a
// *fresh* engine compiled with that query alone, replaying exactly the
// events pushed during the query's lifetime — byte-identical or bust.
// Queries whose operators the deltas never touch must match over their
// whole life (stateful operators keep matching across unrelated churn);
// added queries must see exactly their post-birth events; removed ones
// must stop at their death.
// ----------------------------------------------------------------------

/// One step of a churn script.
#[derive(Debug, Clone)]
enum ChurnStep {
    /// Integrate a new query into the live plan (hot-swap follows).
    Add(LogicalPlan),
    /// Remove the `i`-th query (in overall registration order).
    Remove(usize),
    /// Push the next `k` events from the prepared log.
    Push(usize),
}

/// Engine modes the churn scripts run under.
#[derive(Debug, Clone, Copy)]
enum ChurnMode {
    PerEvent,
    PushBatch,
    Sharded(usize),
    Streaming(usize, usize),
}

const CHURN_MODES: &[ChurnMode] = &[
    ChurnMode::PerEvent,
    ChurnMode::PushBatch,
    ChurnMode::Sharded(2),
    ChurnMode::Sharded(4),
    ChurnMode::Streaming(3, 5),
    ChurnMode::Streaming(2, 64),
];

/// A live engine under churn: pushes events and hot-swaps plans.
#[allow(clippy::large_enum_variant)] // test scaffolding, built a handful of times
enum ChurnEngine {
    Exec {
        exec: ExecutablePlan,
        sink: CollectingSink,
        batched: bool,
    },
    Sharded(Option<ShardedRuntime<CollectingSink>>),
    Streaming(StreamingShardedRuntime<CollectingSink>),
}

impl ChurnEngine {
    fn new(mode: ChurnMode, plan: &PlanGraph) -> ChurnEngine {
        match mode {
            ChurnMode::PerEvent => ChurnEngine::Exec {
                exec: ExecutablePlan::new(plan).unwrap(),
                sink: CollectingSink::default(),
                batched: false,
            },
            ChurnMode::PushBatch => ChurnEngine::Exec {
                exec: ExecutablePlan::new(plan).unwrap(),
                sink: CollectingSink::default(),
                batched: true,
            },
            ChurnMode::Sharded(n) => {
                ChurnEngine::Sharded(Some(ShardedRuntime::new(plan, n).unwrap()))
            }
            ChurnMode::Streaming(n, batch) => ChurnEngine::Streaming(
                StreamingShardedRuntime::with_config(
                    plan,
                    n,
                    StreamingConfig {
                        batch_size: batch,
                        queue_depth: 2,
                    },
                )
                .unwrap(),
            ),
        }
    }

    fn push(&mut self, events: &[(SourceId, Tuple)]) {
        match self {
            ChurnEngine::Exec {
                exec,
                sink,
                batched,
            } => {
                if *batched {
                    exec.push_batch(events, sink).unwrap();
                } else {
                    for (src, t) in events {
                        exec.push(*src, t.clone(), sink).unwrap();
                    }
                }
            }
            ChurnEngine::Sharded(rt) => rt.as_mut().unwrap().push_batch(events).unwrap(),
            ChurnEngine::Streaming(rt) => rt.push_batch(events).unwrap(),
        }
    }

    fn swap(&mut self, plan: &PlanGraph) {
        match self {
            ChurnEngine::Exec { exec, .. } => exec.apply_delta(plan).unwrap(),
            ChurnEngine::Sharded(rt) => rt.as_mut().unwrap().update_plan(plan).unwrap(),
            ChurnEngine::Streaming(rt) => rt.update_plan(plan).unwrap(),
        }
    }

    /// Results so far without ending the engine (single-threaded modes
    /// only — the step-wise oracle checks use this).
    fn peek(&self) -> Option<Vec<(QueryId, Tuple)>> {
        match self {
            ChurnEngine::Exec { sink, .. } => Some(sink.results.clone()),
            _ => None,
        }
    }

    fn finish(self) -> Vec<(QueryId, Tuple)> {
        match self {
            ChurnEngine::Exec { sink, .. } => sink.results,
            ChurnEngine::Sharded(rt) => rt.unwrap().finish().results,
            ChurnEngine::Streaming(mut rt) => rt.finish().unwrap().results,
        }
    }
}

/// One query's life under a churn run: its logical plan, id, and the
/// event-log window during which it was registered.
#[derive(Debug, Clone)]
struct QueryLife {
    plan: LogicalPlan,
    qid: QueryId,
    birth: usize,
    death: Option<usize>,
}

struct ChurnOutcome {
    lives: Vec<QueryLife>,
    results: Vec<(QueryId, Tuple)>,
    fed: usize,
}

/// Runs a churn script under one engine mode. When `stepwise` is true
/// (single-threaded modes), every step is followed by a full oracle
/// check of every query's results so far.
fn run_churn(
    name: &str,
    mode: ChurnMode,
    initial: &[LogicalPlan],
    steps: &[ChurnStep],
    events: &[(SourceId, Tuple)],
    stepwise: bool,
) -> ChurnOutcome {
    let optimizer = Optimizer::new(OptimizerConfig::default());
    let mut plan = PlanGraph::new();
    sources(&mut plan);
    let mut lives: Vec<QueryLife> = Vec::new();
    for q in initial {
        let qid = plan.add_query(q).unwrap();
        lives.push(QueryLife {
            plan: q.clone(),
            qid,
            birth: 0,
            death: None,
        });
    }
    optimizer.optimize(&mut plan).unwrap();
    plan.validate().unwrap();

    let mut engine = ChurnEngine::new(mode, &plan);
    let mut fed = 0usize;
    for step in steps {
        match step {
            ChurnStep::Push(k) => {
                let hi = (fed + k).min(events.len());
                engine.push(&events[fed..hi]);
                fed = hi;
            }
            ChurnStep::Add(q) => {
                let integration = optimizer.integrate(&mut plan, q).unwrap();
                plan.validate().unwrap();
                engine.swap(&plan);
                lives.push(QueryLife {
                    plan: q.clone(),
                    qid: integration.query,
                    birth: fed,
                    death: None,
                });
            }
            ChurnStep::Remove(i) => {
                let qid = lives[*i].qid;
                plan.remove_query(qid).unwrap();
                plan.validate().unwrap();
                engine.swap(&plan);
                lives[*i].death = Some(fed);
            }
        }
        if stepwise {
            if let Some(results) = engine.peek() {
                assert_churn_oracle(
                    name,
                    &format!("{mode:?} (step-wise)"),
                    &lives,
                    &results,
                    fed,
                    events,
                );
            }
        }
    }
    ChurnOutcome {
        lives,
        results: engine.finish(),
        fed,
    }
}

/// Byte-identical check of every query's lifetime results against its
/// fresh-compile oracle.
fn assert_churn_oracle(
    name: &str,
    mode: &str,
    lives: &[QueryLife],
    results: &[(QueryId, Tuple)],
    fed: usize,
    events: &[(SourceId, Tuple)],
) {
    for life in lives {
        let mut fresh = PlanGraph::new();
        sources(&mut fresh);
        let oracle_q = fresh.add_query(&life.plan).unwrap();
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut fresh)
            .unwrap();
        let mut exec = ExecutablePlan::new(&fresh).unwrap();
        let mut sink = CollectingSink::default();
        let hi = life.death.unwrap_or(fed).min(fed);
        for (src, t) in &events[life.birth.min(hi)..hi] {
            exec.push(*src, t.clone(), &mut sink).unwrap();
        }
        let mut want: Vec<(u64, String)> = sink
            .results
            .iter()
            .filter(|(q, _)| *q == oracle_q)
            .map(|(_, t)| (t.ts, t.to_string()))
            .collect();
        want.sort();
        let mut got: Vec<(u64, String)> = results
            .iter()
            .filter(|(q, _)| *q == life.qid)
            .map(|(_, t)| (t.ts, t.to_string()))
            .collect();
        got.sort();
        assert_eq!(
            got, want,
            "churn `{name}`: query {} (born {}, died {:?}) diverged from its \
             fresh-compile oracle under {mode}",
            life.qid, life.birth, life.death
        );
    }
}

/// The deterministic churn scripts: each is (initial queries, steps).
/// Scripts only use lifecycle transitions the hot-swap protocol supports
/// (no re-routing of live stateful state — `update_plan` refuses those).
fn churn_scripts() -> Vec<(&'static str, Vec<LogicalPlan>, Vec<ChurnStep>)> {
    use ChurnStep::*;
    vec![
        (
            // Stateless churn around live stateful state: the keyed
            // sequence and the grouped aggregate must keep matching
            // across every add/remove.
            "stateless_churn_over_stateful",
            vec![equi_seq(30), aggregate(vec![0], 12)],
            vec![
                Push(40),
                Add(LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64))),
                Push(40),
                Add(LogicalPlan::source("S").select(Predicate::attr_eq_const(1, 2i64))),
                Push(40),
                Remove(2),
                Push(40),
                Remove(3),
                Add(LogicalPlan::source("U").select(Predicate::attr_eq_const(2, 3i64))),
                Push(40),
            ],
        ),
        (
            // A stateful query arriving on (and later leaving) a
            // previously stateless component: stateless → keyed → back.
            "stateful_add_then_remove",
            vec![LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 2i64))],
            vec![
                Push(40),
                Add(equi_seq(15)),
                Push(60),
                Add(LogicalPlan::source("T").select(Predicate::attr_eq_const(1, 1i64))),
                Push(40),
                Remove(1),
                Push(40),
            ],
        ),
        (
            // Churn around a *pinned* component: the unkeyed sequence
            // stays on worker 0 while stateless siblings come and go
            // (Pinned ↔ PinnedSplit flips).
            "churn_around_pinned",
            vec![unkeyed_seq(12)],
            vec![
                Push(40),
                Add(LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64))),
                Push(40),
                Add(LogicalPlan::source("S")),
                Push(30),
                Remove(1),
                Push(30),
                Remove(2),
                Push(30),
            ],
        ),
        (
            // Duplicate-query churn: the added select is CSE-identical to
            // a resident one (their output streams alias), then leaves.
            "cse_alias_churn",
            vec![LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64))],
            vec![
                Push(30),
                Add(LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64))),
                Push(40),
                Remove(1),
                Push(40),
            ],
        ),
        (
            // Stateful arrival + churn on an independent component while
            // an iterate holds state.
            "iterate_resident_churn",
            vec![keyed_iterate(20)],
            vec![
                Push(50),
                Add(LogicalPlan::source("A").select(Predicate::attr_eq_const(2, 0i64))),
                Push(50),
                Add(aggregate(vec![0, 1], 9)),
                Push(40),
                Remove(1),
                Push(40),
            ],
        ),
    ]
}

#[test]
fn churn_scripts_conform_to_fresh_compile_oracle_across_modes() {
    for (name, initial, steps) in churn_scripts() {
        let mut probe = PlanGraph::new();
        let srcs = sources(&mut probe);
        let events = interleaved(&srcs, 260);
        for &mode in CHURN_MODES {
            let stepwise = matches!(mode, ChurnMode::PerEvent);
            let outcome = run_churn(name, mode, &initial, &steps, &events, stepwise);
            assert_churn_oracle(
                name,
                &format!("{mode:?}"),
                &outcome.lives,
                &outcome.results,
                outcome.fed,
                &events,
            );
        }
    }
}

/// Churn steps as generated data: pushes interleaved with adds/removes of
/// stateless queries while a keyed sequence holds state throughout.
#[derive(Debug, Clone)]
enum RandomChurnStep {
    Push(usize),
    AddSelect(usize, i64),
    RemoveOldest,
}

fn random_churn_strategy() -> impl Strategy<Value = Vec<RandomChurnStep>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..25).prop_map(RandomChurnStep::Push),
            (0usize..3, 0i64..4).prop_map(|(a, c)| RandomChurnStep::AddSelect(a, c)),
            Just(RandomChurnStep::RemoveOldest),
        ],
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random interleavings of pushes with query add/remove: the
    /// streaming pool (hot-swapped, never restarted) must match the
    /// single-threaded per-event engine run through the same lifecycle,
    /// and both must match the fresh-compile oracle per query.
    #[test]
    fn random_churn_interleavings_conform(
        raw_steps in random_churn_strategy(),
        raw in events_strategy(),
        batch_size in 1usize..8,
        n in 1usize..4,
    ) {
        let mut probe = PlanGraph::new();
        let srcs = sources(&mut probe);
        let events = to_events(&raw, &srcs);
        let initial = vec![equi_seq(14), LogicalPlan::source("A").select(Predicate::attr_eq_const(1, 1i64))];
        // Materialize the generated steps into a concrete script,
        // resolving RemoveOldest against the add history.
        let mut steps: Vec<ChurnStep> = Vec::new();
        let mut added: Vec<usize> = Vec::new(); // indices into `lives` order
        let mut next_index = initial.len();
        for s in &raw_steps {
            match s {
                RandomChurnStep::Push(k) => steps.push(ChurnStep::Push(*k)),
                RandomChurnStep::AddSelect(a, c) => {
                    steps.push(ChurnStep::Add(
                        LogicalPlan::source("U").select(Predicate::attr_eq_const(*a, *c)),
                    ));
                    added.push(next_index);
                    next_index += 1;
                }
                RandomChurnStep::RemoveOldest => {
                    if !added.is_empty() {
                        steps.push(ChurnStep::Remove(added.remove(0)));
                    }
                }
            }
        }
        steps.push(ChurnStep::Push(events.len()));

        let reference = run_churn("random", ChurnMode::PerEvent, &initial, &steps, &events, false);
        assert_churn_oracle(
            "random",
            "PerEvent",
            &reference.lives,
            &reference.results,
            reference.fed,
            &events,
        );
        let candidate = run_churn(
            "random",
            ChurnMode::Streaming(n, batch_size),
            &initial,
            &steps,
            &events,
            false,
        );
        let canon = |r: &[(QueryId, Tuple)]| {
            let mut v: Vec<(u64, u32, String)> =
                r.iter().map(|(q, t)| (t.ts, q.0, t.to_string())).collect();
            v.sort();
            v
        };
        prop_assert_eq!(
            canon(&candidate.results),
            canon(&reference.results),
            "streaming churn (n={}, batch_size={}) diverged from per-event",
            n,
            batch_size
        );
    }
}

// ----------------------------------------------------------------------
// Streaming lifecycle: interleaved push / push_batch / flush sequences
// must match one-shot batching, whatever the batch boundaries.
// ----------------------------------------------------------------------

/// One step of a streaming session: feed `k` events by single `push`es,
/// feed `k` events as one `push_batch` slice (possibly empty), or insert a
/// `flush` barrier.
#[derive(Debug, Clone)]
enum Step {
    Push(usize),
    Batch(usize),
    Flush,
}

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..5).prop_map(Step::Push),
            (0usize..9).prop_map(Step::Batch),
            Just(Step::Flush),
        ],
        1..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming lifecycle oracle: any interleaving of push / push_batch
    /// (sizes 0 and 1 included) / flush, over inputs with timestamp ties,
    /// equals the one-shot batch result — for stateless, keyed, and
    /// pinned-split workloads alike.
    #[test]
    fn streaming_lifecycle_matches_one_shot(
        steps in steps_strategy(),
        raw in events_strategy(),
        batch_size in 1usize..8,
        n in 1usize..5,
    ) {
        let (plan, srcs) = optimized(&[
            LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
            equi_seq(12),
            unkeyed_seq(7),
            LogicalPlan::source("S").select(Predicate::attr_eq_const(1, 2i64)),
        ]);
        let events = to_events(&raw, &srcs);

        let mut rt: StreamingShardedRuntime<CollectingSink> =
            StreamingShardedRuntime::with_config(
                &plan,
                n,
                StreamingConfig { batch_size, queue_depth: 2 },
            )
            .unwrap();
        let mut fed = 0usize;
        for step in &steps {
            match step {
                Step::Push(k) => {
                    for (src, t) in events.iter().skip(fed).take(*k) {
                        rt.push(*src, t.clone()).unwrap();
                    }
                    fed = (fed + k).min(events.len());
                }
                Step::Batch(k) => {
                    let hi = (fed + k).min(events.len());
                    rt.push_batch(&events[fed..hi]).unwrap();
                    fed = hi;
                }
                Step::Flush => rt.flush().unwrap(),
            }
        }
        rt.push_batch(&events[fed..]).unwrap();
        rt.flush().unwrap();
        prop_assert_eq!(rt.events_in(), events.len() as u64);
        let got = canonical(rt.finish().unwrap().results);

        let want = run_mode(&plan, &events, Mode::PerEvent);
        prop_assert_eq!(got, want, "lifecycle (batch_size={}, n={}) diverged", batch_size, n);
    }
}
