//! Differential cross-engine conformance harness.
//!
//! The load-bearing invariant of the whole optimizer/runtime stack (as in
//! the multi-query-optimization literature: the shared plan must be a
//! drop-in replacement for naive per-query execution) is that **every
//! engine configuration produces identical results**. Since PR 5 every
//! engine is constructed the same way — `Rumor::session()` with a
//! [`SessionConfig`] — and driven the same way — the [`EventRuntime`]
//! trait — so the whole mode matrix is literally a table of configs run
//! through ONE generic driver:
//!
//! * **modes** — the single-threaded session fed per-event and batched,
//!   one-shot sharded sessions (several worker counts), and streaming
//!   sessions (worker counts × batch sizes × feed styles, including the
//!   zero-copy shared batch and chunked feeds with flush barriers);
//! * **workloads** — every partitioning verdict (stateless, keyed,
//!   pinned, pinned-with-stateless-siblings) plus edge inputs (empty,
//!   single event, timestamp ties);
//! * **oracle** — results are canonicalized to a `(timestamp, query,
//!   rendered tuple)`-sorted vector, a total order, so every mode must
//!   match the per-event reference *byte for byte*.
//!
//! **Subscription conformance** rides inside the same matrix run: every
//! mode subscribes to half the queries, and (a) each subscription's
//! contents must be byte-identical to the oracle restricted to its query,
//! (b) the subscribed queries must never leak into `collect_all`, and
//! (c) subscriptions plus catch-all together must reproduce the full
//! reference. The churn suite applies the same discipline across live
//! query add/remove.
//!
//! A generator-driven propcheck runs random query mixes and event streams
//! through the same matrix, and a lifecycle propcheck exercises the
//! streaming session's `push`/`push_batch`/`flush` interleavings (batch
//! sizes 0 and 1, tied timestamps included) against one-shot batching.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use rumor::{
    AggFunc, AggSpec, EventRuntime, IterSpec, LogicalPlan, OptimizerConfig, PinScope, Predicate,
    QueryId, Rumor, Schema, SessionConfig, SourceRoute, StreamingConfig, Subscription, Tuple,
    Verdict,
};
use rumor_expr::{CmpOp, Expr, NamedExpr, SchemaMap};
use rumor_types::SourceId;

/// Canonical result form: `(ts, query, rendered tuple)`, fully sorted — a
/// total order, so two modes agree iff their canonical vectors are
/// byte-identical.
fn canonical(results: &[(QueryId, Tuple)]) -> Vec<(u64, u32, String)> {
    let mut v: Vec<(u64, u32, String)> = results
        .iter()
        .map(|(q, t)| (t.ts, q.0, t.to_string()))
        .collect();
    v.sort();
    v
}

/// How a mode feeds its session through the [`EventRuntime`] trait.
#[derive(Debug, Clone, Copy)]
enum Feed {
    /// One `push` call per event.
    PerEvent,
    /// The whole input in one `push_batch` call.
    Batch,
    /// The whole input as one refcounted `push_batch_shared` batch.
    SharedBatch,
    /// Small `push_batch` chunks with a `flush` barrier after each.
    ChunkedFlush(usize),
}

/// One engine mode of the conformance matrix: a session config plus a
/// feed style. This *is* the whole per-mode plumbing now — everything
/// else is the one generic driver below.
#[derive(Debug, Clone)]
struct ModeSpec {
    name: &'static str,
    cfg: SessionConfig,
    feed: Feed,
}

fn one_shot(n: usize) -> SessionConfig {
    SessionConfig {
        workers: Some(n),
        one_shot: true,
        streaming: None,
    }
}

fn streaming(n: usize, batch_size: usize) -> SessionConfig {
    SessionConfig {
        workers: Some(n),
        one_shot: false,
        streaming: Some(StreamingConfig {
            batch_size,
            queue_depth: 2,
        }),
    }
}

/// The full matrix every workload must survive. `per_event` first: it is
/// the reference everything else is compared against.
fn modes() -> Vec<ModeSpec> {
    vec![
        ModeSpec {
            name: "per_event",
            cfg: SessionConfig::default(),
            feed: Feed::PerEvent,
        },
        ModeSpec {
            name: "push_batch",
            cfg: SessionConfig::default(),
            feed: Feed::Batch,
        },
        ModeSpec {
            name: "one_shot/n1",
            cfg: one_shot(1),
            feed: Feed::Batch,
        },
        ModeSpec {
            name: "one_shot/n2",
            cfg: one_shot(2),
            feed: Feed::Batch,
        },
        ModeSpec {
            name: "one_shot/n4",
            cfg: one_shot(4),
            feed: Feed::Batch,
        },
        ModeSpec {
            name: "one_shot/n7",
            cfg: one_shot(7),
            feed: Feed::Batch,
        },
        ModeSpec {
            name: "streaming/n2/b1",
            cfg: streaming(2, 1),
            feed: Feed::Batch,
        },
        ModeSpec {
            name: "streaming/n4/b64",
            cfg: streaming(4, 64),
            feed: Feed::Batch,
        },
        ModeSpec {
            name: "streaming_shared/n3/b16",
            cfg: streaming(3, 16),
            feed: Feed::SharedBatch,
        },
        ModeSpec {
            name: "streaming_chunked/n3",
            cfg: SessionConfig {
                workers: Some(3),
                one_shot: false,
                streaming: None,
            },
            feed: Feed::ChunkedFlush(17),
        },
    ]
}

/// Feeds a prepared input through any [`EventRuntime`] and finishes it.
fn drive<R: EventRuntime>(rt: &mut R, events: &[(SourceId, Tuple)], feed: Feed) {
    match feed {
        Feed::PerEvent => {
            for (src, t) in events {
                rt.push(*src, t.clone()).unwrap();
            }
        }
        Feed::Batch => rt.push_batch(events).unwrap(),
        Feed::SharedBatch => rt.push_batch_shared(Arc::new(events.to_vec())).unwrap(),
        Feed::ChunkedFlush(chunk) => {
            for c in events.chunks(chunk.max(1)) {
                rt.push_batch(c).unwrap();
                rt.flush().unwrap();
            }
        }
    }
    rt.finish().unwrap();
}

/// Everything one mode run observes: per-subscription results, the
/// catch-all leftovers, and the post-finish stats snapshot.
struct ModeOutcome {
    subs: Vec<(QueryId, Vec<Tuple>)>,
    leftovers: Vec<(QueryId, Tuple)>,
    stats: rumor::StatsSnapshot,
}

impl ModeOutcome {
    /// Subscription and catch-all results combined (what a monolithic
    /// sink would have seen).
    fn combined(&self) -> Vec<(QueryId, Tuple)> {
        let mut all = self.leftovers.clone();
        for (q, tuples) in &self.subs {
            all.extend(tuples.iter().map(|t| (*q, t.clone())));
        }
        all
    }
}

/// THE generic driver: builds one session from the config, subscribes to
/// the given queries, feeds the input through the [`EventRuntime`] trait,
/// and reports what each subscriber and the catch-all saw.
fn run_mode(
    engine: &Rumor,
    cfg: &SessionConfig,
    feed: Feed,
    events: &[(SourceId, Tuple)],
    subscribe: &[QueryId],
) -> ModeOutcome {
    let mut session = engine.session().config(cfg.clone()).build().unwrap();
    let mut subs: Vec<Subscription> = subscribe.iter().map(|&q| session.subscribe(q)).collect();
    drive(&mut session, events, feed);
    let stats = session.stats().unwrap();
    ModeOutcome {
        subs: subs.iter_mut().map(|s| (s.query(), s.drain())).collect(),
        leftovers: session.collect_all(),
        stats,
    }
}

/// Per-query result sequences in arrival order — the stricter contract
/// the single-threaded feeds carry on top of the canonical multiset:
/// `push_batch` promises results *identical to per-event order*, not
/// merely the same multiset.
fn per_query_ordered(results: &[(QueryId, Tuple)]) -> Vec<(u32, Vec<String>)> {
    let mut by_query: std::collections::BTreeMap<u32, Vec<String>> = Default::default();
    for (q, t) in results {
        by_query.entry(q.0).or_default().push(t.to_string());
    }
    by_query.into_iter().collect()
}

/// Asserts every mode of the matrix reproduces the per-event reference
/// byte for byte on the given workload — with half the queries observed
/// through subscriptions: each subscription must match the oracle
/// restricted to its query, subscribed queries must not leak into the
/// catch-all, and the union must equal the reference. Additionally pins
/// the `push_batch` per-query order contract.
fn assert_conformance(
    name: &str,
    engine: &Rumor,
    queries: &[QueryId],
    events: &[(SourceId, Tuple)],
) {
    let table = modes();
    let reference_run = run_mode(engine, &table[0].cfg, table[0].feed, events, &[]);
    let reference = canonical(&reference_run.leftovers);
    // The oracle per query, for the subscription checks.
    let ref_of = |q: QueryId| -> Vec<(u64, u32, String)> {
        reference
            .iter()
            .filter(|(_, qi, _)| *qi == q.0)
            .cloned()
            .collect()
    };
    // Every other query index gets a subscriber; the rest stays on the
    // catch-all path, so both delivery paths are checked in one run.
    let subscribed: Vec<QueryId> = queries.iter().copied().step_by(2).collect();
    // The snapshot shape (op ids and query rows) must be identical on
    // every engine — same plan, same introspection surface.
    let ref_shape: (Vec<_>, Vec<_>) = (
        reference_run.stats.ops.iter().map(|o| o.mop).collect(),
        reference_run
            .stats
            .queries
            .iter()
            .map(|r| r.query)
            .collect(),
    );
    for mode in &table[1..] {
        let out = run_mode(engine, &mode.cfg, mode.feed, events, &subscribed);
        assert_eq!(
            canonical(&out.combined()),
            reference,
            "workload `{name}` diverged under {} ({} events)",
            mode.name,
            events.len()
        );
        // Stats invariants, every mode: the snapshot accounts for exactly
        // the fed events, per-query delivery counts equal the oracle's
        // result counts, and the shape matches the reference engine.
        assert_eq!(
            out.stats.events_in,
            events.len() as u64,
            "workload `{name}`: stats events_in diverged under {}",
            mode.name
        );
        if rumor::STATS_COMPILED {
            for row in &out.stats.queries {
                let want = reference
                    .iter()
                    .filter(|(_, qi, _)| *qi == row.query.0)
                    .count() as u64;
                assert_eq!(
                    row.emitted, want,
                    "workload `{name}`: emitted count for {} diverged under {}",
                    row.query, mode.name
                );
                // Latency histogram invariants: samples only come from
                // delivered tuples (sampled delivery batches, so at most
                // one per tuple), percentile lower bounds ordered and
                // capped by the observed maximum — on every engine.
                assert!(
                    row.latency.count() <= row.emitted,
                    "workload `{name}`: more latency samples than delivered \
                     tuples for {} under {}",
                    row.query,
                    mode.name
                );
                if row.latency.count() > 0 {
                    let (p50, p90, p99, max) = (
                        row.latency.p50(),
                        row.latency.p90(),
                        row.latency.p99(),
                        row.latency.max(),
                    );
                    assert!(
                        p50 <= p90 && p90 <= p99 && p99 <= max,
                        "workload `{name}`: latency percentiles disordered for {} \
                         under {}: p50={p50} p90={p90} p99={p99} max={max}",
                        row.query,
                        mode.name
                    );
                }
            }
        }
        // Flush-barrier latency records unconditionally (control-plane,
        // rare): after `finish` every engine must have at least one
        // ordered barrier sample, stats-off builds included.
        let flush = &out.stats.runtime.flush;
        assert!(
            flush.count() >= 1,
            "workload `{name}`: no flush-barrier latency sample under {}",
            mode.name
        );
        assert!(
            flush.p50() <= flush.p99() && flush.p99() <= flush.max(),
            "workload `{name}`: flush-barrier percentiles disordered under {}",
            mode.name
        );
        let shape: (Vec<_>, Vec<_>) = (
            out.stats.ops.iter().map(|o| o.mop).collect(),
            out.stats.queries.iter().map(|r| r.query).collect(),
        );
        assert_eq!(
            shape, ref_shape,
            "workload `{name}`: snapshot shape diverged under {}",
            mode.name
        );
        for (q, tuples) in &out.subs {
            let got: Vec<(u64, u32, String)> = {
                let pairs: Vec<(QueryId, Tuple)> = tuples.iter().map(|t| (*q, t.clone())).collect();
                canonical(&pairs)
            };
            assert_eq!(
                got,
                ref_of(*q),
                "workload `{name}`: subscription for {q} diverged from the oracle under {}",
                mode.name
            );
        }
        assert!(
            out.leftovers.iter().all(|(q, _)| !subscribed.contains(q)),
            "workload `{name}`: subscribed queries leaked into collect_all under {}",
            mode.name
        );
    }
    assert_push_batch_order(name, engine, events);
}

/// The documented `push_batch` order contract, uncanonicalized: per-query
/// result sequences of the batched single-threaded session must equal the
/// per-event session's exactly.
fn assert_push_batch_order(name: &str, engine: &Rumor, events: &[(SourceId, Tuple)]) {
    let cfg = SessionConfig::default();
    let want = run_mode(engine, &cfg, Feed::PerEvent, events, &[]);
    let got = run_mode(engine, &cfg, Feed::Batch, events, &[]);
    assert_eq!(
        per_query_ordered(&got.leftovers),
        per_query_ordered(&want.leftovers),
        "workload `{name}`: push_batch broke per-query result order"
    );
}

// ----------------------------------------------------------------------
// The deterministic workload table.
// ----------------------------------------------------------------------

/// Standard source layout: every workload builder registers the same four
/// 3-int sources so event generators can be shared.
fn sources(engine: &mut Rumor) -> Vec<SourceId> {
    ["S", "T", "U", "A"]
        .iter()
        .map(|n| engine.add_source(n, Schema::ints(3), None).unwrap())
        .collect()
}

fn optimized(queries: &[LogicalPlan]) -> (Rumor, Vec<SourceId>, Vec<QueryId>) {
    optimized_with(OptimizerConfig::default(), queries)
}

fn optimized_with(
    config: OptimizerConfig,
    queries: &[LogicalPlan],
) -> (Rumor, Vec<SourceId>, Vec<QueryId>) {
    let mut engine = Rumor::new(config);
    let srcs = sources(&mut engine);
    let qids: Vec<QueryId> = queries
        .iter()
        .map(|q| engine.register(q).unwrap())
        .collect();
    engine.optimize().unwrap();
    engine.plan().validate().unwrap();
    (engine, srcs, qids)
}

/// Deterministic interleaved input over all four sources, strictly
/// increasing timestamps.
fn interleaved(srcs: &[SourceId], n: u64) -> Vec<(SourceId, Tuple)> {
    (0..n)
        .map(|ts| {
            let src = srcs[(ts % srcs.len() as u64) as usize];
            (
                src,
                Tuple::ints(ts, &[(ts % 4) as i64, (ts % 3) as i64, (ts % 5) as i64]),
            )
        })
        .collect()
}

/// Same interleave but every timestamp occurs twice (ties on every pair).
fn tied(srcs: &[SourceId], n: u64) -> Vec<(SourceId, Tuple)> {
    (0..n)
        .map(|i| {
            let src = srcs[(i % srcs.len() as u64) as usize];
            let ts = i / 2;
            (
                src,
                Tuple::ints(ts, &[(i % 4) as i64, (i % 3) as i64, (i % 5) as i64]),
            )
        })
        .collect()
}

fn equi_seq(window: u64) -> LogicalPlan {
    LogicalPlan::source("S")
        .select(Predicate::attr_eq_const(1, 1i64))
        .followed_by(
            LogicalPlan::source("T"),
            rumor::SeqSpec {
                predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                window,
            },
        )
}

fn unkeyed_seq(window: u64) -> LogicalPlan {
    LogicalPlan::source("S").followed_by(
        LogicalPlan::source("T"),
        rumor::SeqSpec {
            predicate: Predicate::cmp(CmpOp::Lt, Expr::col(2), Expr::rcol(2)),
            window,
        },
    )
}

fn keyed_iterate(window: u64) -> LogicalPlan {
    LogicalPlan::source("S")
        .select(Predicate::attr_eq_const(1, 0i64))
        .iterate(
            LogicalPlan::source("T"),
            IterSpec {
                filter: Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
                rebind: Predicate::and(vec![
                    Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
                ]),
                rebind_map: SchemaMap::new(vec![
                    NamedExpr::new("a0", Expr::col(0)),
                    NamedExpr::new("a1", Expr::rcol(1)),
                    NamedExpr::new("a2", Expr::col(2)),
                ]),
                window,
            },
        )
}

fn aggregate(group_by: Vec<usize>, window: u64) -> LogicalPlan {
    LogicalPlan::source("A").aggregate(AggSpec {
        func: AggFunc::Sum,
        input: Expr::col(2),
        group_by,
        window,
    })
}

/// One named workload: an optimized engine, its query ids, and the
/// prepared input.
type Workload = (&'static str, Rumor, Vec<QueryId>, Vec<(SourceId, Tuple)>);

/// The deterministic workload table: every partitioning verdict, the
/// pinned-split shape, a mixed plan, and edge inputs.
fn workload_table() -> Vec<Workload> {
    let mut table = Vec::new();

    let (engine, srcs, qids) = optimized(&[
        LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
        LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 2i64)),
        LogicalPlan::source("U").select(Predicate::attr_eq_const(1, 0i64)),
    ]);
    let events = interleaved(&srcs, 160);
    table.push(("shared_selects", engine, qids, events));

    let (engine, srcs, qids) = optimized(&[
        LogicalPlan::source("U")
            .select(Predicate::attr_eq_const(0, 1i64))
            .project(SchemaMap::new(vec![NamedExpr::new(
                "x",
                Expr::col(1).mul(Expr::lit(3i64)),
            )])),
        LogicalPlan::source("U")
            .select(Predicate::attr_eq_const(0, 1i64))
            .select(Predicate::attr_eq_const(1, 1i64)),
    ]);
    let events = interleaved(&srcs, 160);
    table.push(("select_project_chain", engine, qids, events));

    let (engine, srcs, qids) = optimized(&[equi_seq(12), equi_seq(25)]);
    let events = interleaved(&srcs, 200);
    table.push(("keyed_sequences", engine, qids, events));

    let (engine, srcs, qids) = optimized(&[keyed_iterate(18)]);
    let events = interleaved(&srcs, 160);
    table.push(("keyed_iterate", engine, qids, events));

    let (engine, srcs, qids) = optimized(&[aggregate(vec![0], 9), aggregate(vec![0, 1], 14)]);
    let events = interleaved(&srcs, 160);
    table.push(("grouped_aggregates", engine, qids, events));

    let (engine, srcs, qids) = optimized(&[aggregate(Vec::new(), 11)]);
    let events = interleaved(&srcs, 120);
    table.push(("ungrouped_aggregate_pinned", engine, qids, events));

    let (engine, srcs, qids) = optimized(&[unkeyed_seq(10)]);
    let events = interleaved(&srcs, 160);
    table.push(("unkeyed_sequence_pinned", engine, qids, events));

    // The pinned-split shape: a pinned stateful subgraph plus stateless
    // sibling queries (and a direct source tap) on the same source.
    let (engine, srcs, qids) = optimized(&[
        unkeyed_seq(10),
        LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)),
        LogicalPlan::source("S"),
    ]);
    let events = interleaved(&srcs, 160);
    table.push(("pinned_split_mixed", engine, qids, events));

    // The keyed-split shape: a keyed stateful cone plus stateless sibling
    // queries (and a direct source tap) on the same source — S hashes its
    // stateful leg while the stateless subgraph round-robins
    // (`SourceRoute::KeySplit`).
    let (engine, srcs, qids) = optimized(&[
        equi_seq(14),
        LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)),
        LogicalPlan::source("S"),
    ]);
    let events = interleaved(&srcs, 200);
    table.push(("keyed_split_mixed", engine, qids, events));

    // All verdicts in one plan.
    let (engine, srcs, qids) = optimized(&[
        LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
        equi_seq(15),
        unkeyed_seq(8),
        aggregate(vec![0], 10),
    ]);
    let events = interleaved(&srcs, 240);
    table.push(("all_verdicts_mixed", engine, qids, events));

    // Tied timestamps void the hybrid drain's exactness proof chunk-wise
    // and exercise the per-event fallback under every parallel mode.
    let (engine, srcs, qids) = optimized(&[equi_seq(12), aggregate(vec![0], 7)]);
    let events = tied(&srcs, 200);
    table.push(("timestamp_ties", engine, qids, events));

    let (engine, _, qids) = optimized(&[equi_seq(10), LogicalPlan::source("U")]);
    table.push(("empty_input", engine, qids, Vec::new()));

    let (engine, srcs, qids) = optimized(&[LogicalPlan::source("U"), equi_seq(10)]);
    let events = vec![(srcs[2], Tuple::ints(0, &[1, 1, 1]))];
    table.push(("single_event", engine, qids, events));

    table
}

#[test]
fn conformance_matrix_all_workloads_all_modes() {
    for (name, engine, qids, events) in workload_table() {
        assert_conformance(name, &engine, &qids, &events);
    }
}

/// Both optimizer modes through every engine mode: the cost-based sharing
/// search must produce byte-identical per-query results to the greedy
/// plan on every workload family — while never ending with more m-ops.
/// The `overlapping_aggs` family is the shape where the plans genuinely
/// differ (greedy locks the large aggregate family out of its channel
/// merge), so the equivalence there is the non-trivial acceptance bar.
#[test]
fn cost_based_search_conforms_across_modes() {
    let overlap_agg = |input_col: usize, pred: i64| {
        LogicalPlan::source("U")
            .select(Predicate::attr_eq_const(0, pred))
            .aggregate(AggSpec {
                func: AggFunc::Sum,
                input: Expr::col(input_col),
                group_by: vec![],
                window: 8,
            })
    };
    let families: Vec<(&str, Vec<LogicalPlan>, u64)> = vec![
        (
            "shared_selects",
            vec![
                LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
                LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 2i64)),
                LogicalPlan::source("U").select(Predicate::attr_eq_const(1, 0i64)),
            ],
            160,
        ),
        (
            "overlapping_aggs",
            (0..2i64)
                .map(|c| overlap_agg(1, c))
                .chain((0..3i64).map(|c| overlap_agg(2, c)))
                .collect(),
            160,
        ),
        (
            "mixed_stateful",
            vec![
                LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
                equi_seq(15),
                aggregate(vec![0], 10),
            ],
            200,
        ),
        ("tied_ts", vec![equi_seq(12), aggregate(vec![0], 7)], 200),
    ];
    for (name, queries, n) in families {
        let (greedy, srcs, _) = optimized(&queries);
        let (cost, _, qids) = optimized_with(OptimizerConfig::cost_based(), &queries);
        assert!(
            cost.plan().mop_count() <= greedy.plan().mop_count(),
            "{name}: cost-based {} m-ops vs greedy {}",
            cost.plan().mop_count(),
            greedy.plan().mop_count()
        );
        let events = if name == "tied_ts" {
            tied(&srcs, n)
        } else {
            interleaved(&srcs, n)
        };
        // Greedy per-event reference vs cost-based per-event run: the two
        // optimizer modes must agree byte for byte...
        let cfg = SessionConfig::default();
        let greedy_ref =
            canonical(&run_mode(&greedy, &cfg, Feed::PerEvent, &events, &[]).leftovers);
        let cost_ref = canonical(&run_mode(&cost, &cfg, Feed::PerEvent, &events, &[]).leftovers);
        assert_eq!(
            cost_ref, greedy_ref,
            "{name}: optimizer modes disagree on per-event results"
        );
        // ...and the cost-based plan must conform across the whole engine
        // matrix, subscriptions included.
        assert_conformance(name, &cost, &qids, &events);
    }
    // The strict-improvement case: at the overlapping-family shape the
    // search must beat greedy outright, not merely tie.
    let queries: Vec<LogicalPlan> = (0..2i64)
        .map(|c| overlap_agg(1, c))
        .chain((0..3i64).map(|c| overlap_agg(2, c)))
        .collect();
    let (greedy, _, _) = optimized(&queries);
    let (cost, _, _) = optimized_with(OptimizerConfig::cost_based(), &queries);
    assert!(
        cost.plan().mop_count() < greedy.plan().mop_count(),
        "cost-based must strictly beat greedy here: {} vs {}",
        cost.plan().mop_count(),
        greedy.plan().mop_count()
    );
}

/// The split verdict itself is part of the contract: the mixed pinned
/// workload must report a stateful-subgraph pin and still produce
/// identical results at every worker count — observed through the
/// session's scheme accessor.
#[test]
fn pinned_split_reports_subgraph_verdict_and_conforms() {
    let (engine, srcs, _) = optimized(&[
        unkeyed_seq(10),
        LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)),
    ]);
    let events = interleaved(&srcs, 200);
    let reference = canonical(
        &run_mode(
            &engine,
            &SessionConfig::default(),
            Feed::PerEvent,
            &events,
            &[],
        )
        .leftovers,
    );
    for n in [1usize, 2, 4, 7] {
        for cfg in [one_shot(n), streaming(n, 13)] {
            let mut session = engine.session().config(cfg.clone()).build().unwrap();
            {
                let scheme = session.scheme().expect("parallel sessions expose a scheme");
                let pinned: Vec<_> = scheme
                    .components()
                    .iter()
                    .filter(|c| c.verdict == Verdict::Pinned)
                    .collect();
                assert_eq!(pinned.len(), 1);
                assert_eq!(pinned[0].pin_scope, Some(PinScope::StatefulSubgraph));
                assert_eq!(*scheme.route(srcs[0]), SourceRoute::PinnedSplit);
                assert_eq!(*scheme.route(srcs[1]), SourceRoute::Pinned);
            }
            drive(&mut session, &events, Feed::Batch);
            assert_eq!(session.events_in(), events.len() as u64);
            assert_eq!(
                canonical(&session.collect_all()),
                reference,
                "{cfg:?} n={n}"
            );
        }
    }
}

/// The keyed counterpart of the pinned-split contract: a keyed stateful
/// cone with a stateless sibling on the same source must report
/// [`SourceRoute::KeySplit`] (stateful leg hashed, stateless leg
/// round-robin) and stay byte-identical to the per-event oracle at every
/// worker count, on the one-shot, streaming, and zero-copy shared-batch
/// paths alike.
#[test]
fn keyed_split_reports_cone_route_and_conforms() {
    // The sequence consumes S *directly* (no shared prefilter select —
    // the optimizer would fuse it with the sibling select into one m-op
    // inside the stateful cone, hiding the free part).
    let keyed_bare = LogicalPlan::source("S").followed_by(
        LogicalPlan::source("T"),
        rumor::SeqSpec {
            predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            window: 14,
        },
    );
    let (engine, srcs, _) = optimized(&[
        keyed_bare,
        LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)),
    ]);
    let events = interleaved(&srcs, 200);
    let reference = canonical(
        &run_mode(
            &engine,
            &SessionConfig::default(),
            Feed::PerEvent,
            &events,
            &[],
        )
        .leftovers,
    );
    for n in [1usize, 2, 4, 7] {
        for (cfg, feed) in [
            (one_shot(n), Feed::Batch),
            (streaming(n, 13), Feed::Batch),
            (streaming(n, 16), Feed::SharedBatch),
        ] {
            let mut session = engine.session().config(cfg.clone()).build().unwrap();
            {
                let scheme = session.scheme().expect("parallel sessions expose a scheme");
                let keyed: Vec<_> = scheme
                    .components()
                    .iter()
                    .filter(|c| c.verdict == Verdict::Keyed)
                    .collect();
                assert_eq!(keyed.len(), 1);
                assert_eq!(*scheme.route(srcs[0]), SourceRoute::KeySplit(vec![0]));
                assert_eq!(*scheme.route(srcs[1]), SourceRoute::Key(vec![0]));
            }
            drive(&mut session, &events, feed);
            assert_eq!(session.events_in(), events.len() as u64);
            assert_eq!(
                canonical(&session.collect_all()),
                reference,
                "{cfg:?} n={n} {feed:?}"
            );
        }
    }
}

/// The mixed plan's scheme exposes the verdict spectrum at once and the
/// routes follow it.
#[test]
fn mixed_plan_scheme_has_all_three_verdicts() {
    let (engine, srcs, _) = optimized(&[
        LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
        equi_seq(10),
        aggregate(Vec::new(), 10),
    ]);
    let session = engine.session().workers(4).one_shot().build().unwrap();
    let scheme = session.scheme().unwrap();
    assert_eq!(scheme.count(Verdict::Stateless), 1);
    assert_eq!(scheme.count(Verdict::Keyed), 1);
    assert_eq!(scheme.count(Verdict::Pinned), 1);
    assert_eq!(*scheme.route(srcs[2]), SourceRoute::RoundRobin); // U
    assert_eq!(*scheme.route(srcs[0]), SourceRoute::Key(vec![0])); // S
    assert_eq!(*scheme.route(srcs[1]), SourceRoute::Key(vec![0])); // T
    assert_eq!(*scheme.route(srcs[3]), SourceRoute::Pinned); // A: ungrouped agg
    for c in scheme.components() {
        match c.verdict {
            Verdict::Pinned => assert_eq!(c.pin_scope, Some(PinScope::WholeComponent)),
            _ => assert_eq!(c.pin_scope, None),
        }
    }
    assert!(scheme.is_parallelizable());
}

// ----------------------------------------------------------------------
// Generator-driven oracle: random query mixes and event streams through
// the same matrix.
// ----------------------------------------------------------------------

fn any_query() -> impl Strategy<Value = LogicalPlan> {
    let sel = (0usize..3, 0i64..4)
        .prop_map(|(a, c)| LogicalPlan::source("U").select(Predicate::attr_eq_const(a, c)));
    let proj = (0i64..4, 1i64..4).prop_map(|(c, k)| {
        LogicalPlan::source("U")
            .select(Predicate::attr_eq_const(0, c))
            .project(SchemaMap::new(vec![NamedExpr::new(
                "x",
                Expr::col(1).mul(Expr::lit(k)),
            )]))
    });
    let seq = (1u64..25).prop_map(equi_seq);
    let mu = (1u64..20).prop_map(keyed_iterate);
    let pinned = (1u64..15).prop_map(unkeyed_seq);
    let agg = (
        prop_oneof![Just(vec![0usize]), Just(vec![0usize, 1]), Just(Vec::new())],
        1u64..20,
    )
        .prop_map(|(g, w)| aggregate(g, w));
    prop_oneof![sel, proj, seq, mu, pinned, agg]
}

/// Raw events: source selector, advance-timestamp flag (false ⇒ tie), and
/// attribute values.
fn events_strategy() -> impl Strategy<Value = Vec<(usize, bool, Vec<i64>)>> {
    prop::collection::vec(
        (0usize..4, any::<bool>(), prop::collection::vec(0i64..4, 3)),
        0..120,
    )
}

fn to_events(raw: &[(usize, bool, Vec<i64>)], srcs: &[SourceId]) -> Vec<(SourceId, Tuple)> {
    let mut ts = 0u64;
    raw.iter()
        .map(|(which, advance, vals)| {
            if *advance {
                ts += 1;
            }
            (srcs[*which % srcs.len()], Tuple::ints(ts, vals))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random workloads through the full mode matrix: every mode must be
    /// byte-identical to the per-event reference (subscriptions included —
    /// the shared assert covers them).
    #[test]
    fn random_workloads_conform_across_all_modes(
        queries in prop::collection::vec(any_query(), 1..7),
        raw in events_strategy(),
    ) {
        let (engine, srcs, qids) = optimized(&queries);
        let events = to_events(&raw, &srcs);
        assert_conformance("random", &engine, &qids, &events);
    }

    /// Per-key sub-batching oracle: purely keyed stateful workloads
    /// (sequence, iterate, grouped aggregate) under random inputs heavy
    /// with timestamp ties and interleaved keys. Pins (a) the strict
    /// single-threaded contract — `push_batch` per-query result order
    /// identical to per-event, which routes through
    /// `process_batch_keyed` whenever a chunk's timestamps strictly
    /// increase and through the per-event fallback when they tie — and
    /// (b) the keyed zero-copy shared-batch delivery against the same
    /// reference.
    #[test]
    fn keyed_sub_batching_matches_per_event_under_ties(
        raw in events_strategy(),
        window in 1u64..25,
    ) {
        let (engine, srcs, _) = optimized(&[
            equi_seq(window),
            keyed_iterate(window),
            aggregate(vec![0], window),
        ]);
        let events = to_events(&raw, &srcs);
        assert_push_batch_order("keyed_ties", &engine, &events);
        let want = canonical(
            &run_mode(&engine, &SessionConfig::default(), Feed::PerEvent, &events, &[]).leftovers,
        );
        let got = canonical(
            &run_mode(&engine, &streaming(3, 8), Feed::SharedBatch, &events, &[]).leftovers,
        );
        prop_assert_eq!(got, want, "keyed shared-batch diverged under ties");
    }
}

// ----------------------------------------------------------------------
// Dynamic query lifecycle: churn scripts (add → push → add → push →
// remove → push) against a fresh-compile oracle, across engine modes.
//
// The oracle leans on the load-bearing invariant the rest of this file
// pins (the shared plan is a drop-in replacement for naive per-query
// execution): a query's results are independent of which other queries
// share the plan. So the reference for each query that ever lived is a
// *fresh* engine compiled with that query alone, replaying exactly the
// events pushed during the query's lifetime — byte-identical or bust.
// Queries whose operators the deltas never touch must match over their
// whole life (stateful operators keep matching across unrelated churn);
// added queries must see exactly their post-birth events; removed ones
// must stop at their death.
//
// Every life with an even index is observed through a Subscription taken
// at its birth (live add included) — the subscription-under-churn
// conformance case: subscribed lifetimes must match the oracle exactly,
// and never leak into collect_all.
// ----------------------------------------------------------------------

/// One step of a churn script.
#[derive(Debug, Clone)]
enum ChurnStep {
    /// Integrate a new query into the live plan (hot-swap follows).
    Add(LogicalPlan),
    /// Remove the `i`-th query (in overall registration order).
    Remove(usize),
    /// Push the next `k` events from the prepared log.
    Push(usize),
}

/// Engine modes the churn scripts run under: session configs plus the
/// feed style, like everywhere else in this harness.
fn churn_modes() -> Vec<ModeSpec> {
    vec![
        ModeSpec {
            name: "per_event",
            cfg: SessionConfig::default(),
            feed: Feed::PerEvent,
        },
        ModeSpec {
            name: "push_batch",
            cfg: SessionConfig::default(),
            feed: Feed::Batch,
        },
        ModeSpec {
            name: "one_shot/n2",
            cfg: one_shot(2),
            feed: Feed::Batch,
        },
        ModeSpec {
            name: "one_shot/n4",
            cfg: one_shot(4),
            feed: Feed::Batch,
        },
        ModeSpec {
            name: "streaming/n3/b5",
            cfg: streaming(3, 5),
            feed: Feed::Batch,
        },
        ModeSpec {
            name: "streaming/n2/b64",
            cfg: streaming(2, 64),
            feed: Feed::Batch,
        },
    ]
}

/// One query's life under a churn run: its logical plan, id, and the
/// event-log window during which it was registered.
#[derive(Debug, Clone)]
struct QueryLife {
    plan: LogicalPlan,
    qid: QueryId,
    birth: usize,
    death: Option<usize>,
}

struct ChurnOutcome {
    lives: Vec<QueryLife>,
    results: Vec<(QueryId, Tuple)>,
    fed: usize,
}

/// Drains every subscription and the catch-all into the accumulated
/// result log, checking the routing invariant on the way: a subscribed
/// query's results must never appear in `collect_all`.
fn gather(
    session: &mut rumor::Session,
    subs: &mut HashMap<QueryId, Subscription>,
    collected: &mut Vec<(QueryId, Tuple)>,
) {
    for (q, sub) in subs.iter_mut() {
        collected.extend(sub.drain().into_iter().map(|t| (*q, t)));
    }
    let rest = session.collect_all();
    assert!(
        rest.iter().all(|(q, _)| !subs.contains_key(q)),
        "subscribed queries leaked into collect_all"
    );
    collected.extend(rest);
}

/// Runs a churn script under one engine mode through the session API.
/// When `stepwise` is true (the per-event mode), every step is followed
/// by a flush + full oracle check of every query's results so far.
fn run_churn(
    name: &str,
    mode: &ModeSpec,
    initial: &[LogicalPlan],
    steps: &[ChurnStep],
    events: &[(SourceId, Tuple)],
    stepwise: bool,
) -> ChurnOutcome {
    let mut engine = Rumor::new(OptimizerConfig::default());
    sources(&mut engine);
    let mut lives: Vec<QueryLife> = Vec::new();
    for q in initial {
        let qid = engine.register(q).unwrap();
        lives.push(QueryLife {
            plan: q.clone(),
            qid,
            birth: 0,
            death: None,
        });
    }
    engine.optimize().unwrap();
    engine.plan().validate().unwrap();

    let mut session = engine.session().config(mode.cfg.clone()).build().unwrap();
    // Even-index lives get a subscriber from birth.
    let mut subs: HashMap<QueryId, Subscription> = HashMap::new();
    for (i, life) in lives.iter().enumerate() {
        if i % 2 == 0 {
            subs.insert(life.qid, session.subscribe(life.qid));
        }
    }
    let mut collected: Vec<(QueryId, Tuple)> = Vec::new();
    let mut fed = 0usize;
    for step in steps {
        match step {
            ChurnStep::Push(k) => {
                let hi = (fed + k).min(events.len());
                match mode.feed {
                    Feed::PerEvent => {
                        for (src, t) in &events[fed..hi] {
                            session.push(*src, t.clone()).unwrap();
                        }
                    }
                    _ => session.push_batch(&events[fed..hi]).unwrap(),
                }
                fed = hi;
            }
            ChurnStep::Add(q) => {
                let integration = engine.add_query(q).unwrap();
                engine.plan().validate().unwrap();
                session.update_plan(engine.plan()).unwrap();
                if lives.len().is_multiple_of(2) {
                    subs.insert(integration.query, session.subscribe(integration.query));
                }
                lives.push(QueryLife {
                    plan: q.clone(),
                    qid: integration.query,
                    birth: fed,
                    death: None,
                });
            }
            ChurnStep::Remove(i) => {
                let qid = lives[*i].qid;
                engine.remove_query(qid).unwrap();
                engine.plan().validate().unwrap();
                session.update_plan(engine.plan()).unwrap();
                lives[*i].death = Some(fed);
            }
        }
        if stepwise {
            session.flush().unwrap();
            gather(&mut session, &mut subs, &mut collected);
            assert_churn_oracle(
                name,
                &format!("{} (step-wise)", mode.name),
                &lives,
                &collected,
                fed,
                events,
            );
        }
    }
    session.finish().unwrap();
    gather(&mut session, &mut subs, &mut collected);
    ChurnOutcome {
        lives,
        results: collected,
        fed,
    }
}

/// Byte-identical check of every query's lifetime results against its
/// fresh-compile oracle (itself a single-threaded session over a fresh
/// engine holding that query alone).
fn assert_churn_oracle(
    name: &str,
    mode: &str,
    lives: &[QueryLife],
    results: &[(QueryId, Tuple)],
    fed: usize,
    events: &[(SourceId, Tuple)],
) {
    for life in lives {
        let mut fresh = Rumor::new(OptimizerConfig::default());
        sources(&mut fresh);
        let oracle_q = fresh.register(&life.plan).unwrap();
        fresh.optimize().unwrap();
        let mut oracle = fresh.session().build().unwrap();
        let hi = life.death.unwrap_or(fed).min(fed);
        for (src, t) in &events[life.birth.min(hi)..hi] {
            oracle.push(*src, t.clone()).unwrap();
        }
        oracle.finish().unwrap();
        let mut want: Vec<(u64, String)> = oracle
            .collect_all()
            .iter()
            .filter(|(q, _)| *q == oracle_q)
            .map(|(_, t)| (t.ts, t.to_string()))
            .collect();
        want.sort();
        let mut got: Vec<(u64, String)> = results
            .iter()
            .filter(|(q, _)| *q == life.qid)
            .map(|(_, t)| (t.ts, t.to_string()))
            .collect();
        got.sort();
        assert_eq!(
            got, want,
            "churn `{name}`: query {} (born {}, died {:?}) diverged from its \
             fresh-compile oracle under {mode}",
            life.qid, life.birth, life.death
        );
    }
}

/// The deterministic churn scripts: each is (initial queries, steps).
/// Scripts only use lifecycle transitions the hot-swap protocol supports
/// (no re-routing of live stateful state — `update_plan` refuses those).
fn churn_scripts() -> Vec<(&'static str, Vec<LogicalPlan>, Vec<ChurnStep>)> {
    use ChurnStep::*;
    vec![
        (
            // Stateless churn around live stateful state: the keyed
            // sequence and the grouped aggregate must keep matching
            // across every add/remove.
            "stateless_churn_over_stateful",
            vec![equi_seq(30), aggregate(vec![0], 12)],
            vec![
                Push(40),
                Add(LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64))),
                Push(40),
                Add(LogicalPlan::source("S").select(Predicate::attr_eq_const(1, 2i64))),
                Push(40),
                Remove(2),
                Push(40),
                Remove(3),
                Add(LogicalPlan::source("U").select(Predicate::attr_eq_const(2, 3i64))),
                Push(40),
            ],
        ),
        (
            // A stateful query arriving on (and later leaving) a
            // previously stateless component: stateless → keyed → back.
            "stateful_add_then_remove",
            vec![LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 2i64))],
            vec![
                Push(40),
                Add(equi_seq(15)),
                Push(60),
                Add(LogicalPlan::source("T").select(Predicate::attr_eq_const(1, 1i64))),
                Push(40),
                Remove(1),
                Push(40),
            ],
        ),
        (
            // Churn around a *pinned* component: the unkeyed sequence
            // stays on worker 0 while stateless siblings come and go
            // (Pinned ↔ PinnedSplit flips).
            "churn_around_pinned",
            vec![unkeyed_seq(12)],
            vec![
                Push(40),
                Add(LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64))),
                Push(40),
                Add(LogicalPlan::source("S")),
                Push(30),
                Remove(1),
                Push(30),
                Remove(2),
                Push(30),
            ],
        ),
        (
            // Duplicate-query churn: the added select is CSE-identical to
            // a resident one (their output streams alias), then leaves.
            "cse_alias_churn",
            vec![LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64))],
            vec![
                Push(30),
                Add(LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64))),
                Push(40),
                Remove(1),
                Push(40),
            ],
        ),
        (
            // Stateful arrival + churn on an independent component while
            // an iterate holds state.
            "iterate_resident_churn",
            vec![keyed_iterate(20)],
            vec![
                Push(50),
                Add(LogicalPlan::source("A").select(Predicate::attr_eq_const(2, 0i64))),
                Push(50),
                Add(aggregate(vec![0, 1], 9)),
                Push(40),
                Remove(1),
                Push(40),
            ],
        ),
    ]
}

#[test]
fn churn_scripts_conform_to_fresh_compile_oracle_across_modes() {
    for (name, initial, steps) in churn_scripts() {
        let mut probe = Rumor::new(OptimizerConfig::default());
        let srcs = sources(&mut probe);
        let events = interleaved(&srcs, 260);
        for mode in churn_modes() {
            let stepwise = matches!(mode.feed, Feed::PerEvent) && mode.cfg.workers.is_none();
            let outcome = run_churn(name, &mode, &initial, &steps, &events, stepwise);
            assert_churn_oracle(
                name,
                mode.name,
                &outcome.lives,
                &outcome.results,
                outcome.fed,
                &events,
            );
        }
    }
}

/// Churn steps as generated data: pushes interleaved with adds/removes of
/// stateless queries while a keyed sequence holds state throughout.
#[derive(Debug, Clone)]
enum RandomChurnStep {
    Push(usize),
    AddSelect(usize, i64),
    RemoveOldest,
}

fn random_churn_strategy() -> impl Strategy<Value = Vec<RandomChurnStep>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..25).prop_map(RandomChurnStep::Push),
            (0usize..3, 0i64..4).prop_map(|(a, c)| RandomChurnStep::AddSelect(a, c)),
            Just(RandomChurnStep::RemoveOldest),
        ],
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random interleavings of pushes with query add/remove: the
    /// streaming session (hot-swapped, never restarted) must match the
    /// single-threaded per-event session run through the same lifecycle,
    /// and both must match the fresh-compile oracle per query.
    #[test]
    fn random_churn_interleavings_conform(
        raw_steps in random_churn_strategy(),
        raw in events_strategy(),
        batch_size in 1usize..8,
        n in 1usize..4,
    ) {
        let mut probe = Rumor::new(OptimizerConfig::default());
        let srcs = sources(&mut probe);
        let events = to_events(&raw, &srcs);
        let initial = vec![equi_seq(14), LogicalPlan::source("A").select(Predicate::attr_eq_const(1, 1i64))];
        // Materialize the generated steps into a concrete script,
        // resolving RemoveOldest against the add history.
        let mut steps: Vec<ChurnStep> = Vec::new();
        let mut added: Vec<usize> = Vec::new(); // indices into `lives` order
        let mut next_index = initial.len();
        for s in &raw_steps {
            match s {
                RandomChurnStep::Push(k) => steps.push(ChurnStep::Push(*k)),
                RandomChurnStep::AddSelect(a, c) => {
                    steps.push(ChurnStep::Add(
                        LogicalPlan::source("U").select(Predicate::attr_eq_const(*a, *c)),
                    ));
                    added.push(next_index);
                    next_index += 1;
                }
                RandomChurnStep::RemoveOldest => {
                    if !added.is_empty() {
                        steps.push(ChurnStep::Remove(added.remove(0)));
                    }
                }
            }
        }
        steps.push(ChurnStep::Push(events.len()));

        let per_event = ModeSpec {
            name: "per_event",
            cfg: SessionConfig::default(),
            feed: Feed::PerEvent,
        };
        let reference = run_churn("random", &per_event, &initial, &steps, &events, false);
        assert_churn_oracle(
            "random",
            "per_event",
            &reference.lives,
            &reference.results,
            reference.fed,
            &events,
        );
        let candidate_mode = ModeSpec {
            name: "streaming",
            cfg: streaming(n, batch_size),
            feed: Feed::Batch,
        };
        let candidate = run_churn("random", &candidate_mode, &initial, &steps, &events, false);
        prop_assert_eq!(
            canonical(&candidate.results),
            canonical(&reference.results),
            "streaming churn (n={}, batch_size={}) diverged from per-event",
            n,
            batch_size
        );
    }
}

// ----------------------------------------------------------------------
// Streaming lifecycle: interleaved push / push_batch / flush sequences
// must match one-shot batching, whatever the batch boundaries.
// ----------------------------------------------------------------------

/// One step of a streaming session: feed `k` events by single `push`es,
/// feed `k` events as one `push_batch` slice (possibly empty), or insert a
/// `flush` barrier.
#[derive(Debug, Clone)]
enum Step {
    Push(usize),
    Batch(usize),
    Flush,
}

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..5).prop_map(Step::Push),
            (0usize..9).prop_map(Step::Batch),
            Just(Step::Flush),
        ],
        1..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming lifecycle oracle: any interleaving of push / push_batch
    /// (sizes 0 and 1 included) / flush, over inputs with timestamp ties,
    /// equals the one-shot batch result — for stateless, keyed, and
    /// pinned-split workloads alike.
    #[test]
    fn streaming_lifecycle_matches_one_shot(
        steps in steps_strategy(),
        raw in events_strategy(),
        batch_size in 1usize..8,
        n in 1usize..5,
    ) {
        let (engine, srcs, _) = optimized(&[
            LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
            equi_seq(12),
            unkeyed_seq(7),
            LogicalPlan::source("S").select(Predicate::attr_eq_const(1, 2i64)),
        ]);
        let events = to_events(&raw, &srcs);

        let mut session = engine
            .session()
            .config(streaming(n, batch_size))
            .build()
            .unwrap();
        let mut fed = 0usize;
        for step in &steps {
            match step {
                Step::Push(k) => {
                    for (src, t) in events.iter().skip(fed).take(*k) {
                        session.push(*src, t.clone()).unwrap();
                    }
                    fed = (fed + k).min(events.len());
                }
                Step::Batch(k) => {
                    let hi = (fed + k).min(events.len());
                    session.push_batch(&events[fed..hi]).unwrap();
                    fed = hi;
                }
                Step::Flush => session.flush().unwrap(),
            }
        }
        session.push_batch(&events[fed..]).unwrap();
        session.flush().unwrap();
        prop_assert_eq!(session.events_in(), events.len() as u64);
        session.finish().unwrap();
        let got = canonical(&session.collect_all());

        let want = canonical(
            &run_mode(&engine, &SessionConfig::default(), Feed::PerEvent, &events, &[]).leftovers,
        );
        prop_assert_eq!(got, want, "lifecycle (batch_size={}, n={}) diverged", batch_size, n);
    }
}

// ---------------------------------------------------------------------------
// Server loopback conformance: `rumor_server::Client` vs the embedded oracle
// ---------------------------------------------------------------------------
//
// The network front door must be a drop-in replacement for the embedded
// session, with the same per-query fresh-compile oracle discipline the
// churn suite uses: for every query registered over the wire, the results
// the client receives must be byte-identical to a fresh single-threaded
// engine holding that query alone, fed exactly the events pushed during
// the query's lifetime.

use rumor_server::{Client, Server, ServerConfig};

const LOOPBACK_STREAMS: &str =
    "CREATE STREAM ls (a INT, b INT, c INT);\nCREATE STREAM lt (a INT, b INT, c INT);";

fn loopback_server() -> Server {
    let mut engine = Rumor::new(OptimizerConfig::default());
    engine.execute(LOOPBACK_STREAMS).unwrap();
    Server::spawn(engine, ServerConfig::default()).unwrap()
}

/// Canonical per-query form for wire-delivered results: `(ts, rendered)`,
/// sorted — the same total order `canonical` uses, minus the query id
/// (client and oracle ids differ by construction).
fn canonical_tuples(tuples: &[Tuple]) -> Vec<(u64, String)> {
    let mut v: Vec<(u64, String)> = tuples.iter().map(|t| (t.ts, t.to_string())).collect();
    v.sort();
    v
}

/// Fresh-compile oracle for one script-registered query: a fresh engine
/// holding it alone, fed `events` per-event on the single-threaded
/// session (the reference engine of the whole conformance matrix).
fn loopback_oracle(body: &str, events: &[(&str, Tuple)]) -> Vec<(u64, String)> {
    let mut fresh = Rumor::new(OptimizerConfig::default());
    fresh.execute(LOOPBACK_STREAMS).unwrap();
    let qids = fresh.execute(&format!("QUERY oracle AS {body};")).unwrap();
    assert_eq!(qids.len(), 1);
    fresh.optimize().unwrap();
    let mut session = fresh.session().build().unwrap();
    for (src_name, t) in events {
        let src = fresh.source_id(src_name).unwrap();
        session.push(src, t.clone()).unwrap();
    }
    session.finish().unwrap();
    let tuples: Vec<Tuple> = session
        .collect_all()
        .into_iter()
        .filter(|(q, _)| *q == qids[0])
        .map(|(_, t)| t)
        .collect();
    canonical_tuples(&tuples)
}

/// Interleaved two-stream input with patterned attributes, mirroring the
/// embedded matrix's `interleaved` builder.
fn loopback_events(n: u64) -> Vec<(&'static str, Tuple)> {
    (0..n)
        .map(|i| {
            let name = if i % 3 == 0 { "lt" } else { "ls" };
            (
                name,
                Tuple::ints(i, &[(i % 5) as i64, (i % 97) as i64, i as i64]),
            )
        })
        .collect()
}

/// The representative workload bodies: stateless selections, a computed
/// projection, a keyed windowed aggregate, a window join, and a Cayuga
/// sequence pattern — one per partitioning flavour of the main matrix.
fn loopback_bodies() -> Vec<(&'static str, &'static str)> {
    vec![
        ("sel_eq", "SELECT * FROM ls WHERE a = 1"),
        ("sel_gt", "SELECT * FROM ls WHERE b > 40"),
        ("project", "SELECT a, b * 2 AS dbl FROM ls"),
        (
            "agg",
            "SELECT a, SUM(b) AS total FROM ls [RANGE 5] GROUP BY a",
        ),
        ("join", "SELECT * FROM ls JOIN lt ON ls.a = lt.a WITHIN 50"),
        (
            "pattern",
            "PATTERN ls AS x THEN lt AS y WHERE x.a = y.a WITHIN 50",
        ),
    ]
}

#[test]
fn server_loopback_matches_embedded_oracle_across_workloads() {
    let server = loopback_server();
    let bodies = loopback_bodies();

    // Two tenants register the *same* query texts: distinct QueryIds on
    // the wire, shared m-ops in the plan — the paper's cross-tenant
    // sharing, exercised over TCP.
    let mut c0 = Client::connect(server.addr()).unwrap();
    let mut c1 = Client::connect(server.addr()).unwrap();
    for (name, body) in &bodies {
        c0.register(name, body).unwrap();
    }
    for (name, body) in &bodies {
        c1.register(name, body).unwrap();
    }

    let events = loopback_events(400);
    for chunk in events.chunks(64) {
        for (src_name, t) in chunk {
            let src = c0.source(src_name).unwrap();
            c0.push(src, t.clone()).unwrap();
        }
        // Barrier on the feeder, then on the passive tenant, so both
        // have every result of the chunk buffered locally.
        c0.flush().unwrap();
        c1.flush().unwrap();
    }

    for (name, body) in &bodies {
        let want = loopback_oracle(body, &events);
        assert!(
            !want.is_empty(),
            "workload `{name}` produced nothing — not a representative test"
        );
        for (label, client) in [("c0", &mut c0), ("c1", &mut c1)] {
            let got = canonical_tuples(&client.drain(name));
            assert_eq!(
                got, want,
                "workload `{name}`: {label} results over the wire diverged \
                 from the embedded fresh-compile oracle"
            );
        }
    }

    // Sharing must be visible across tenants: both clients' identical
    // selections share m-ops, so the explain fan-out mentions multiple
    // queries on shared nodes.
    let explain = c0.explain().unwrap();
    assert!(
        explain.contains("q"),
        "explain over the wire should render the shared plan: {explain}"
    );
    c0.bye().unwrap();
    c1.bye().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn server_loopback_churn_script_matches_oracle() {
    let server = loopback_server();
    let mut c0 = Client::connect(server.addr()).unwrap();
    let mut c1 = Client::connect(server.addr()).unwrap();
    let events = loopback_events(400);
    let src_of = |c: &Client, name: &str| c.source(name).unwrap();

    let feed = |c: &mut Client, evs: &[(&str, Tuple)]| {
        for (src_name, t) in evs {
            let src = src_of(c, src_name);
            c.push(src, t.clone()).unwrap();
        }
        c.flush().unwrap();
    };

    // add → push → add → push → drop → push → add → push, with flush
    // barriers so both clients hold their deliveries at each step.
    c0.register("sel", "SELECT * FROM ls WHERE a = 1").unwrap();
    feed(&mut c0, &events[0..100]);
    c1.flush().unwrap();

    c1.register(
        "agg",
        "SELECT a, SUM(b) AS total FROM ls [RANGE 5] GROUP BY a",
    )
    .unwrap();
    feed(&mut c0, &events[100..200]);
    c1.flush().unwrap();

    c0.drop_query("sel").unwrap();
    feed(&mut c0, &events[200..300]);
    c1.flush().unwrap();

    c1.register("late", "SELECT * FROM lt WHERE a = 0").unwrap();
    feed(&mut c0, &events[300..400]);
    c1.flush().unwrap();

    // Each query against its lifetime slice of the event stream.
    assert_eq!(
        canonical_tuples(&c0.drain("sel")),
        loopback_oracle("SELECT * FROM ls WHERE a = 1", &events[0..200]),
        "churn: dropped query kept or lost results"
    );
    assert_eq!(
        canonical_tuples(&c1.drain("agg")),
        loopback_oracle(
            "SELECT a, SUM(b) AS total FROM ls [RANGE 5] GROUP BY a",
            &events[100..400]
        ),
        "churn: live-added aggregate diverged"
    );
    assert_eq!(
        canonical_tuples(&c1.drain("late")),
        loopback_oracle("SELECT * FROM lt WHERE a = 0", &events[300..400]),
        "churn: late registration diverged"
    );
    c0.bye().unwrap();
    c1.bye().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn server_loopback_killed_client_leaves_others_unaffected() {
    let server = loopback_server();
    let mut survivor = Client::connect(server.addr()).unwrap();
    survivor
        .register("sel", "SELECT * FROM ls WHERE a = 2")
        .unwrap();
    survivor
        .register(
            "agg",
            "SELECT a, SUM(c) AS total FROM ls [RANGE 10] GROUP BY a",
        )
        .unwrap();

    let mut victim = Client::connect(server.addr()).unwrap();
    victim
        .register("v0", "SELECT * FROM ls WHERE a = 2")
        .unwrap();
    victim
        .register("v1", "SELECT * FROM lt WHERE b > 10")
        .unwrap();

    let events = loopback_events(300);
    for (src_name, t) in &events[0..150] {
        let src = survivor.source(src_name).unwrap();
        survivor.push(src, t.clone()).unwrap();
    }
    survivor.flush().unwrap();

    // Kill the victim mid-stream: socket dropped, no BYE. The server
    // notices the disconnect, removes its queries from the shared plan,
    // and keeps serving.
    drop(victim);

    for (src_name, t) in &events[150..300] {
        let src = survivor.source(src_name).unwrap();
        survivor.push(src, t.clone()).unwrap();
    }
    survivor.flush().unwrap();

    assert_eq!(
        canonical_tuples(&survivor.drain("sel")),
        loopback_oracle("SELECT * FROM ls WHERE a = 2", &events),
        "survivor selection diverged after a co-tenant was killed"
    );
    assert_eq!(
        canonical_tuples(&survivor.drain("agg")),
        loopback_oracle(
            "SELECT a, SUM(c) AS total FROM ls [RANGE 10] GROUP BY a",
            &events
        ),
        "survivor aggregate diverged after a co-tenant was killed"
    );
    survivor.bye().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn server_loopback_graceful_drain_is_lossless() {
    let server = loopback_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .register("all_ls", "SELECT * FROM ls WHERE c > -1")
        .unwrap();
    let events = loopback_events(120);
    for (src_name, t) in &events {
        let src = client.source(src_name).unwrap();
        client.push(src, t.clone()).unwrap();
    }
    // No flush: everything rides on the shutdown drain.
    server.shutdown().unwrap();
    client.wait_server_close().unwrap();
    assert!(client.server_closed(), "GOODBYE must terminate the drain");
    assert_eq!(
        canonical_tuples(&client.drain("all_ls")),
        loopback_oracle("SELECT * FROM ls WHERE c > -1", &events),
        "graceful drain lost buffered results"
    );
    assert_eq!(client.shed(), 0, "drain must not shed");
}
