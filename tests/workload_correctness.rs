//! Correctness of the evaluation workloads themselves (small scale): the
//! RUMOR plan and the Cayuga engine must agree on every workload of §5.2,
//! and the channel / no-channel Workload 3 setups must agree on identical
//! content — the preconditions for the throughput comparisons of
//! Figures 9–11 to be meaningful.

use std::collections::HashMap;

use rumor::workloads::synth::{
    st_events, w3_channel_events, w3_round_robin_events, StTag, W3Event,
};
use rumor::workloads::{hybrid, perfmon, workload1, workload2, workload3, Params};
use rumor::{
    CayugaEngine, CollectingSink, Membership, Optimizer, OptimizerConfig, PlanGraph, QueryId,
    Schema,
};
use rumor_engine::ExecutablePlan;

fn small_params() -> Params {
    Params::default()
        .with_queries(25)
        .with_const_domain(8)
        .with_window_domain(40)
        .with_tuples(600)
}

fn run_rumor_st(queries: &[rumor::LogicalPlan], params: &Params) -> HashMap<QueryId, Vec<String>> {
    let mut plan = PlanGraph::new();
    let s = plan
        .add_source("S", Schema::ints(params.num_attrs), None)
        .unwrap();
    let t = plan
        .add_source("T", Schema::ints(params.num_attrs), None)
        .unwrap();
    let qids: Vec<QueryId> = queries.iter().map(|q| plan.add_query(q).unwrap()).collect();
    Optimizer::new(OptimizerConfig::default())
        .optimize(&mut plan)
        .unwrap();
    plan.validate().unwrap();
    let mut exec = ExecutablePlan::new(&plan).unwrap();
    let mut sink = CollectingSink::default();
    for ev in st_events(params) {
        let src = match ev.tag {
            StTag::S => s,
            StTag::T => t,
        };
        exec.push(src, ev.tuple.clone(), &mut sink).unwrap();
    }
    qids.iter()
        .enumerate()
        .map(|(i, &q)| {
            let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
            v.sort();
            (QueryId(i as u32), v)
        })
        .collect()
}

fn run_cayuga_st(automata: &[rumor::Automaton], params: &Params) -> HashMap<QueryId, Vec<String>> {
    let mut engine = CayugaEngine::new();
    for a in automata {
        engine.add_automaton(a);
    }
    let mut out: HashMap<QueryId, Vec<String>> = HashMap::new();
    for ev in st_events(params) {
        let stream = match ev.tag {
            StTag::S => "S",
            StTag::T => "T",
        };
        engine.on_event(stream, &ev.tuple, &mut |q, t| {
            out.entry(q).or_default().push(t.to_string());
        });
    }
    for v in out.values_mut() {
        v.sort();
    }
    out
}

#[test]
fn workload1_engines_agree() {
    let params = small_params();
    let queries = workload1::generate(&params);
    let rumor = run_rumor_st(
        &queries.iter().map(|q| q.plan.clone()).collect::<Vec<_>>(),
        &params,
    );
    let cayuga = run_cayuga_st(
        &queries
            .iter()
            .map(|q| q.automaton.clone())
            .collect::<Vec<_>>(),
        &params,
    );
    let mut total = 0;
    for i in 0..queries.len() {
        let q = QueryId(i as u32);
        let want = cayuga.get(&q).cloned().unwrap_or_default();
        let got = rumor.get(&q).cloned().unwrap_or_default();
        assert_eq!(got, want, "workload1 query {i} diverged");
        total += got.len();
    }
    assert!(total > 0, "workload must produce matches at this scale");
}

#[test]
fn workload2_seq_engines_agree() {
    let params = small_params();
    let queries = workload2::generate_seq(&params);
    let rumor = run_rumor_st(
        &queries.iter().map(|q| q.plan.clone()).collect::<Vec<_>>(),
        &params,
    );
    let cayuga = run_cayuga_st(
        &queries
            .iter()
            .map(|q| q.automaton.clone())
            .collect::<Vec<_>>(),
        &params,
    );
    for i in 0..queries.len() {
        let q = QueryId(i as u32);
        assert_eq!(
            rumor.get(&q).cloned().unwrap_or_default(),
            cayuga.get(&q).cloned().unwrap_or_default(),
            "workload2(;) query {i} diverged"
        );
    }
}

#[test]
fn workload2_mu_engines_agree() {
    let params = small_params().with_queries(12).with_tuples(400);
    let queries = workload2::generate_mu(&params);
    let rumor = run_rumor_st(
        &queries.iter().map(|q| q.plan.clone()).collect::<Vec<_>>(),
        &params,
    );
    let cayuga = run_cayuga_st(
        &queries
            .iter()
            .map(|q| q.automaton.clone())
            .collect::<Vec<_>>(),
        &params,
    );
    for i in 0..queries.len() {
        let q = QueryId(i as u32);
        assert_eq!(
            rumor.get(&q).cloned().unwrap_or_default(),
            cayuga.get(&q).cloned().unwrap_or_default(),
            "workload2(µ) query {i} diverged"
        );
    }
}

#[test]
fn workload3_channel_and_plain_agree() {
    let capacity = 5;
    let params = small_params().with_queries(15).with_tuples(400);
    let queries = workload3::generate(&params, capacity);

    // Channel setup.
    let mut plan = PlanGraph::new();
    let c = plan
        .add_source_group("C", Schema::ints(params.num_attrs), capacity)
        .unwrap();
    let t = plan
        .add_source("T", Schema::ints(params.num_attrs), None)
        .unwrap();
    let qids: Vec<QueryId> = queries
        .iter()
        .map(|q| plan.add_query(&q.channel_plan).unwrap())
        .collect();
    Optimizer::new(OptimizerConfig::default())
        .optimize(&mut plan)
        .unwrap();
    plan.validate().unwrap();
    let mut exec = ExecutablePlan::new(&plan).unwrap();
    let mut sink = CollectingSink::default();
    for ev in w3_channel_events(&params, capacity) {
        match ev {
            W3Event::Channel(tuple) => exec
                .push_channel(c, tuple, Membership::all(capacity), &mut sink)
                .unwrap(),
            W3Event::T(tuple) => exec.push(t, tuple, &mut sink).unwrap(),
            W3Event::Si(..) => unreachable!(),
        }
    }
    let channel_results: Vec<Vec<String>> = qids
        .iter()
        .map(|&q| {
            let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
            v.sort();
            v
        })
        .collect();

    // Plain setup over identical content.
    let mut plan = PlanGraph::new();
    let mut sis = Vec::new();
    for i in 0..capacity {
        sis.push(
            plan.add_source(
                format!("S{i}"),
                Schema::ints(params.num_attrs),
                Some("w3".into()),
            )
            .unwrap(),
        );
    }
    let t = plan
        .add_source("T", Schema::ints(params.num_attrs), None)
        .unwrap();
    let qids: Vec<QueryId> = queries
        .iter()
        .map(|q| plan.add_query(&q.plain_plan).unwrap())
        .collect();
    Optimizer::new(OptimizerConfig::without_channels())
        .optimize(&mut plan)
        .unwrap();
    plan.validate().unwrap();
    let mut exec = ExecutablePlan::new(&plan).unwrap();
    let mut sink = CollectingSink::default();
    for ev in w3_round_robin_events(&params, capacity) {
        match ev {
            W3Event::Si(i, tuple) => exec.push(sis[i], tuple, &mut sink).unwrap(),
            W3Event::T(tuple) => exec.push(t, tuple, &mut sink).unwrap(),
            W3Event::Channel(_) => unreachable!(),
        }
    }
    let plain_results: Vec<Vec<String>> = qids
        .iter()
        .map(|&q| {
            let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
            v.sort();
            v
        })
        .collect();

    assert_eq!(channel_results, plain_results);
    assert!(channel_results.iter().any(|v| !v.is_empty()));
}

#[test]
fn workload3_mu_variant_channel_and_plain_agree() {
    // §5.2's closing remark: the µ template over channels behaves like the
    // ; template. Cross-check results between the channel and round-robin
    // setups at small scale.
    let capacity = 4;
    let params = small_params().with_queries(8).with_tuples(300);
    let queries = workload3::generate_mu(&params, capacity);

    let run_channel = || {
        let mut plan = PlanGraph::new();
        let c = plan
            .add_source_group("C", Schema::ints(params.num_attrs), capacity)
            .unwrap();
        let t = plan
            .add_source("T", Schema::ints(params.num_attrs), None)
            .unwrap();
        let qids: Vec<QueryId> = queries
            .iter()
            .map(|q| plan.add_query(&q.channel_plan).unwrap())
            .collect();
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CollectingSink::default();
        for ev in w3_channel_events(&params, capacity) {
            match ev {
                W3Event::Channel(tuple) => exec
                    .push_channel(c, tuple, Membership::all(capacity), &mut sink)
                    .unwrap(),
                W3Event::T(tuple) => exec.push(t, tuple, &mut sink).unwrap(),
                W3Event::Si(..) => unreachable!(),
            }
        }
        qids.iter()
            .map(|&q| {
                let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
                v.sort();
                v
            })
            .collect::<Vec<_>>()
    };

    let run_plain = || {
        let mut plan = PlanGraph::new();
        let mut sis = Vec::new();
        for i in 0..capacity {
            sis.push(
                plan.add_source(
                    format!("S{i}"),
                    Schema::ints(params.num_attrs),
                    Some("w3".into()),
                )
                .unwrap(),
            );
        }
        let t = plan
            .add_source("T", Schema::ints(params.num_attrs), None)
            .unwrap();
        let qids: Vec<QueryId> = queries
            .iter()
            .map(|q| plan.add_query(&q.plain_plan).unwrap())
            .collect();
        Optimizer::new(OptimizerConfig::without_channels())
            .optimize(&mut plan)
            .unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CollectingSink::default();
        for ev in w3_round_robin_events(&params, capacity) {
            match ev {
                W3Event::Si(i, tuple) => exec.push(sis[i], tuple, &mut sink).unwrap(),
                W3Event::T(tuple) => exec.push(t, tuple, &mut sink).unwrap(),
                W3Event::Channel(_) => unreachable!(),
            }
        }
        qids.iter()
            .map(|&q| {
                let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
                v.sort();
                v
            })
            .collect::<Vec<_>>()
    };

    let channel_results = run_channel();
    let plain_results = run_plain();
    assert_eq!(channel_results, plain_results);
    assert!(channel_results.iter().any(|v| !v.is_empty()));
}

#[test]
fn hybrid_channel_and_plain_agree() {
    let trace = perfmon::generate(&perfmon::PerfmonConfig {
        processes: 12,
        duration_secs: 300,
        seed: 7,
    });
    let run = |config: OptimizerConfig| {
        let mut plan = PlanGraph::new();
        let cpu = plan.add_source("CPU", Schema::ints(2), None).unwrap();
        let qids: Vec<QueryId> = hybrid::generate(6, 0.4)
            .into_iter()
            .map(|q| plan.add_query(&q.plan).unwrap())
            .collect();
        Optimizer::new(config).optimize(&mut plan).unwrap();
        plan.validate().unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CollectingSink::default();
        for tuple in &trace {
            exec.push(cpu, tuple.clone(), &mut sink).unwrap();
        }
        qids.iter()
            .map(|&q| {
                let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
                v.sort();
                v
            })
            .collect::<Vec<_>>()
    };
    let with_channels = run(OptimizerConfig::default());
    let without = run(OptimizerConfig::without_channels());
    assert_eq!(with_channels, without);
    assert!(
        with_channels.iter().any(|v| !v.is_empty()),
        "the trace must trigger some ramp alerts"
    );
}
