//! Cross-engine equivalence (§4.2/§4.3): running a set of Cayuga automata
//! in the baseline event engine and running their translated, fully
//! optimized RUMOR plans must produce identical per-query results.
//!
//! This is the semantic footing of the paper's §5.2 comparison — the two
//! systems implement the same queries, so only their performance may
//! differ.

use std::collections::HashMap;

use proptest::prelude::*;

use rumor::{
    Automaton, CayugaEngine, CollectingSink, LogicalPlan, Optimizer, OptimizerConfig, PlanGraph,
    Predicate, QueryId, Schema, SeqSpec, Tuple,
};
use rumor_engine::{run_pipelined_config, ExecutablePlan, PipelineConfig};
use rumor_expr::{CmpOp, Expr, NamedExpr, SchemaMap};
use rumor_types::SourceId;

#[derive(Debug, Clone)]
enum Spec {
    /// (start constant, event constant, window)
    Seq(i64, i64, u64),
    /// (start constant, window) with the monotone rebind pattern
    Mu(i64, u64),
}

fn automaton_for(spec: &Spec, q: u32, schema: &Schema) -> Automaton {
    match spec {
        Spec::Seq(c1, c3, w) => Automaton::sequence(
            "S",
            schema,
            Predicate::attr_eq_const(0, *c1),
            "T",
            schema,
            Predicate::cmp(CmpOp::Eq, Expr::rcol(0), Expr::lit(*c3)),
            *w,
            QueryId(q),
        ),
        Spec::Mu(c1, w) => Automaton::iterate(
            "S",
            schema,
            Predicate::attr_eq_const(0, *c1),
            "T",
            Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
            Predicate::and(vec![
                Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
            ]),
            SchemaMap::new(vec![
                NamedExpr::new("a0", Expr::col(0)),
                NamedExpr::new("a1", Expr::rcol(1)),
                NamedExpr::new("a2", Expr::col(2)),
            ]),
            *w,
            QueryId(q),
        ),
    }
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    prop_oneof![
        (0i64..4, 0i64..4, 1u64..30).prop_map(|(c1, c3, w)| Spec::Seq(c1, c3, w)),
        (0i64..4, 1u64..30).prop_map(|(c1, w)| Spec::Mu(c1, w)),
    ]
}

fn events_strategy() -> impl Strategy<Value = Vec<(bool, Tuple)>> {
    prop::collection::vec((any::<bool>(), prop::collection::vec(0i64..4, 3)), 1..120).prop_map(
        |items| {
            items
                .into_iter()
                .enumerate()
                .map(|(ts, (is_s, vals))| (is_s, Tuple::ints(ts as u64, &vals)))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn translated_plans_match_automata(
        specs in prop::collection::vec(spec_strategy(), 1..6),
        events in events_strategy(),
    ) {
        let schema = Schema::ints(3);
        let automata: Vec<Automaton> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| automaton_for(s, i as u32, &schema))
            .collect();

        // Cayuga side.
        let mut cayuga = CayugaEngine::new();
        for a in &automata {
            cayuga.add_automaton(a);
        }
        let mut cayuga_out: HashMap<QueryId, Vec<String>> = HashMap::new();
        for (is_s, tuple) in &events {
            let stream = if *is_s { "S" } else { "T" };
            cayuga.on_event(stream, tuple, &mut |q, t| {
                cayuga_out.entry(q).or_default().push(t.to_string());
            });
        }

        // RUMOR side: translate, register, optimize with the full rule set.
        let mut schemas = HashMap::new();
        schemas.insert("S".to_string(), schema.clone());
        schemas.insert("T".to_string(), schema.clone());
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", schema.clone(), None).unwrap();
        let t = plan.add_source("T", schema.clone(), None).unwrap();
        let mut query_map: Vec<(QueryId, QueryId)> = Vec::new();
        for a in &automata {
            for (cq, logical) in rumor_cayuga::translate(a, &schemas).unwrap() {
                let rq = plan.add_query(&logical).unwrap();
                query_map.push((cq, rq));
            }
        }
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        plan.validate().unwrap();

        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CollectingSink::default();
        for (is_s, tuple) in &events {
            let src = if *is_s { s } else { t };
            exec.push(src, tuple.clone(), &mut sink).unwrap();
        }

        for (cq, rq) in &query_map {
            let mut want = cayuga_out.remove(cq).unwrap_or_default();
            let mut got: Vec<String> = sink.of(*rq).iter().map(|t| t.to_string()).collect();
            want.sort();
            got.sort();
            prop_assert_eq!(got, want, "query {} diverged", cq);
        }
    }
}

// ----------------------------------------------------------------------
// Batched execution equivalence: push_batch and the batch-granular
// pipelined runner must reproduce the per-event engine exactly.
// ----------------------------------------------------------------------

/// A stateless (select/project) query template: the shapes whose optimized
/// plans qualify for the channel-batched fast path.
fn stateless_query() -> impl Strategy<Value = LogicalPlan> {
    let sel = (0usize..3, 0i64..4)
        .prop_map(|(a, c)| LogicalPlan::source("S").select(Predicate::attr_eq_const(a, c)));
    let chain = (0i64..4, 0i64..4).prop_map(|(c, d)| {
        LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(0, c))
            .select(Predicate::attr_eq_const(1, d))
    });
    let proj = (0i64..4, 1i64..4).prop_map(|(c, k)| {
        LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(0, c))
            .project(SchemaMap::new(vec![NamedExpr::new(
                "x",
                Expr::col(1).mul(Expr::lit(k)),
            )]))
    });
    prop_oneof![sel, chain, proj]
}

/// A template pool that also contains stateful sequences, forcing the
/// batched entry point onto its strict per-event fallback.
fn mixed_query() -> impl Strategy<Value = LogicalPlan> {
    let stateless = stateless_query();
    let seq = (0i64..4, 1u64..20).prop_map(|(c, w)| {
        LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(0, c))
            .followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                    window: w,
                },
            )
    });
    prop_oneof![stateless, seq]
}

fn batch_events_strategy() -> impl Strategy<Value = Vec<(bool, Tuple)>> {
    prop::collection::vec((any::<bool>(), prop::collection::vec(0i64..4, 3)), 1..150).prop_map(
        |items| {
            items
                .into_iter()
                .enumerate()
                .map(|(ts, (is_s, vals))| (is_s, Tuple::ints(ts as u64, &vals)))
                .collect()
        },
    )
}

/// Builds an optimized plan over the given query templates, with both an S
/// and a T source registered.
fn optimized_plan(queries: &[LogicalPlan]) -> (PlanGraph, Vec<QueryId>, SourceId, SourceId) {
    let mut plan = PlanGraph::new();
    let s = plan.add_source("S", Schema::ints(3), None).unwrap();
    let t = plan.add_source("T", Schema::ints(3), None).unwrap();
    let qs: Vec<QueryId> = queries.iter().map(|q| plan.add_query(q).unwrap()).collect();
    Optimizer::new(OptimizerConfig::default())
        .optimize(&mut plan)
        .unwrap();
    plan.validate().unwrap();
    (plan, qs, s, t)
}

/// Per-query result strings of the per-event reference engine.
fn per_event_results(
    plan: &PlanGraph,
    events: &[(SourceId, Tuple)],
    qs: &[QueryId],
) -> Vec<Vec<String>> {
    let mut exec = ExecutablePlan::new(plan).unwrap();
    let mut sink = CollectingSink::default();
    for (src, tuple) in events {
        exec.push(*src, tuple.clone(), &mut sink).unwrap();
    }
    qs.iter()
        .map(|&q| sink.of(q).iter().map(|t| t.to_string()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `push_batch` over optimized workloads — both the channel-batched
    /// fast path (stateless plans) and the per-event fallback (plans with
    /// sequences) — must match the per-event engine query for query, in
    /// per-query result order.
    #[test]
    fn push_batch_matches_per_event_engine(
        queries in prop::collection::vec(mixed_query(), 1..8),
        events in batch_events_strategy(),
    ) {
        let (plan, qs, s, t) = optimized_plan(&queries);
        let events: Vec<(SourceId, Tuple)> = events
            .iter()
            .map(|(is_s, tuple)| (if *is_s { s } else { t }, tuple.clone()))
            .collect();
        let want = per_event_results(&plan, &events, &qs);

        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CollectingSink::default();
        exec.push_batch(&events, &mut sink).unwrap();
        let got: Vec<Vec<String>> = qs
            .iter()
            .map(|&q| sink.of(q).iter().map(|t| t.to_string()).collect())
            .collect();
        prop_assert_eq!(got, want, "push_batch diverged (batch_safe={})", exec.is_batch_safe());
    }

    /// The batched pipelined runner over optimized workloads — stateless
    /// plans take the run-batched levelwise path, plans with sequences the
    /// ordered hop-by-hop relay — must produce the same per-query result
    /// multisets as the per-event engine, across stage counts and batch
    /// sizes.
    #[test]
    fn batched_pipeline_matches_per_event_engine(
        queries in prop::collection::vec(mixed_query(), 1..8),
        events in batch_events_strategy(),
        stages in 2usize..5,
        batch_size in 1usize..64,
    ) {
        let (plan, qs, s, t) = optimized_plan(&queries);
        let events: Vec<(SourceId, Tuple)> = events
            .iter()
            .map(|(is_s, tuple)| (if *is_s { s } else { t }, tuple.clone()))
            .collect();
        let mut want = per_event_results(&plan, &events, &qs);
        for v in &mut want {
            v.sort();
        }

        let results = run_pipelined_config(
            &plan,
            &events,
            &PipelineConfig { stages, batch_size },
        )
        .unwrap();
        let mut got: Vec<Vec<String>> = vec![Vec::new(); qs.len()];
        for (q, tuple) in &results {
            if let Some(i) = qs.iter().position(|x| x == q) {
                got[i].push(tuple.to_string());
            }
        }
        for v in &mut got {
            v.sort();
        }
        prop_assert_eq!(got, want, "pipelined(stages={}, batch={}) diverged", stages, batch_size);
    }
}
