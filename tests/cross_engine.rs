//! Cross-engine equivalence (§4.2/§4.3): running a set of Cayuga automata
//! in the baseline event engine and running their translated, fully
//! optimized RUMOR plans must produce identical per-query results.
//!
//! This is the semantic footing of the paper's §5.2 comparison — the two
//! systems implement the same queries, so only their performance may
//! differ.

use std::collections::HashMap;

use proptest::prelude::*;

use rumor::{
    Automaton, CayugaEngine, CollectingSink, Optimizer, OptimizerConfig, PlanGraph, Predicate,
    QueryId, Schema, Tuple,
};
use rumor_engine::ExecutablePlan;
use rumor_expr::{CmpOp, Expr, NamedExpr, SchemaMap};

#[derive(Debug, Clone)]
enum Spec {
    /// (start constant, event constant, window)
    Seq(i64, i64, u64),
    /// (start constant, window) with the monotone rebind pattern
    Mu(i64, u64),
}

fn automaton_for(spec: &Spec, q: u32, schema: &Schema) -> Automaton {
    match spec {
        Spec::Seq(c1, c3, w) => Automaton::sequence(
            "S",
            schema,
            Predicate::attr_eq_const(0, *c1),
            "T",
            schema,
            Predicate::cmp(CmpOp::Eq, Expr::rcol(0), Expr::lit(*c3)),
            *w,
            QueryId(q),
        ),
        Spec::Mu(c1, w) => Automaton::iterate(
            "S",
            schema,
            Predicate::attr_eq_const(0, *c1),
            "T",
            Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
            Predicate::and(vec![
                Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
            ]),
            SchemaMap::new(vec![
                NamedExpr::new("a0", Expr::col(0)),
                NamedExpr::new("a1", Expr::rcol(1)),
                NamedExpr::new("a2", Expr::col(2)),
            ]),
            *w,
            QueryId(q),
        ),
    }
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    prop_oneof![
        (0i64..4, 0i64..4, 1u64..30).prop_map(|(c1, c3, w)| Spec::Seq(c1, c3, w)),
        (0i64..4, 1u64..30).prop_map(|(c1, w)| Spec::Mu(c1, w)),
    ]
}

fn events_strategy() -> impl Strategy<Value = Vec<(bool, Tuple)>> {
    prop::collection::vec((any::<bool>(), prop::collection::vec(0i64..4, 3)), 1..120).prop_map(
        |items| {
            items
                .into_iter()
                .enumerate()
                .map(|(ts, (is_s, vals))| (is_s, Tuple::ints(ts as u64, &vals)))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn translated_plans_match_automata(
        specs in prop::collection::vec(spec_strategy(), 1..6),
        events in events_strategy(),
    ) {
        let schema = Schema::ints(3);
        let automata: Vec<Automaton> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| automaton_for(s, i as u32, &schema))
            .collect();

        // Cayuga side.
        let mut cayuga = CayugaEngine::new();
        for a in &automata {
            cayuga.add_automaton(a);
        }
        let mut cayuga_out: HashMap<QueryId, Vec<String>> = HashMap::new();
        for (is_s, tuple) in &events {
            let stream = if *is_s { "S" } else { "T" };
            cayuga.on_event(stream, tuple, &mut |q, t| {
                cayuga_out.entry(q).or_default().push(t.to_string());
            });
        }

        // RUMOR side: translate, register, optimize with the full rule set.
        let mut schemas = HashMap::new();
        schemas.insert("S".to_string(), schema.clone());
        schemas.insert("T".to_string(), schema.clone());
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", schema.clone(), None).unwrap();
        let t = plan.add_source("T", schema.clone(), None).unwrap();
        let mut query_map: Vec<(QueryId, QueryId)> = Vec::new();
        for a in &automata {
            for (cq, logical) in rumor_cayuga::translate(a, &schemas).unwrap() {
                let rq = plan.add_query(&logical).unwrap();
                query_map.push((cq, rq));
            }
        }
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        plan.validate().unwrap();

        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CollectingSink::default();
        for (is_s, tuple) in &events {
            let src = if *is_s { s } else { t };
            exec.push(src, tuple.clone(), &mut sink).unwrap();
        }

        for (cq, rq) in &query_map {
            let mut want = cayuga_out.remove(cq).unwrap_or_default();
            let mut got: Vec<String> = sink.of(*rq).iter().map(|t| t.to_string()).collect();
            want.sort();
            got.sort();
            prop_assert_eq!(got, want, "query {} diverged", cq);
        }
    }
}

// The former batched-execution and pipelined-runner equivalence proptests
// that lived here were superseded by the table-driven differential
// conformance harness in `tests/conformance.rs`, which runs every engine
// mode (per-event, hybrid batch, pipelined, sharded, streaming sharded)
// over one shared workload matrix.
