//! Plan-rewrite walkthroughs reproducing the paper's worked figures:
//! Figure 1 (selection m-op + channel over shared aggregation inputs),
//! Figure 6 (the n-instance Query 2 pipeline), and Figure 8 (prefix state
//! merging as common subexpression elimination).

use rumor::{
    AggFunc, AggSpec, LogicalPlan, MopKind, Optimizer, OptimizerConfig, PlanGraph, Predicate,
    Schema, SeqSpec,
};
use rumor_expr::{CmpOp, Expr};

/// Figure 1: Q1 = α1(σ1(S)), Q2 = α1(σ2(S)).
#[test]
fn figure1_selection_mop_and_channel() {
    let mut plan = PlanGraph::new();
    plan.add_source("S", Schema::ints(2), None).unwrap();
    let alpha = AggSpec {
        func: AggFunc::Sum,
        input: Expr::col(1),
        group_by: vec![],
        window: 10,
    };
    for c in [1i64, 2] {
        plan.add_query(
            &LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, c))
                .aggregate(alpha.clone()),
        )
        .unwrap();
    }

    // Figure 1(a) → 1(b): rule sσ merges σ1, σ2 into σ{1,2}.
    let mut without_channels = plan.clone();
    Optimizer::new(OptimizerConfig::without_channels())
        .optimize(&mut without_channels)
        .unwrap();
    let sel = without_channels
        .mops()
        .find(|n| n.kind == MopKind::IndexedSelect)
        .expect("σ{1,2} exists");
    assert_eq!(sel.members.len(), 2);
    // Two output streams, two separate α operators (Figure 1(b)).
    assert_eq!(without_channels.mop_count(), 3);

    // Figure 1(b) → 1(c): the channel rule merges the aggregations into
    // α{1,1} reading a channel (the dashed arrow).
    Optimizer::new(OptimizerConfig::default())
        .optimize(&mut plan)
        .unwrap();
    assert_eq!(plan.mop_count(), 2);
    let frag = plan
        .mops()
        .find(|n| n.kind == MopKind::FragmentAggregate)
        .expect("α{1,1} exists");
    let ch = plan.channel_of(frag.members[0].inputs[0]);
    assert_eq!(plan.channel(ch).capacity(), 2, "σ{{1,2}} outputs encoded");
    plan.validate().unwrap();
}

/// Figure 8: two queries sharing the prefix `σθ1(S1) ;θf S2`; the suffix
/// selections θ2 and θ2' differ. CSE merges the prefix (s; on identical
/// sequences), and sσ then indexes the suffix selections — the FR index.
#[test]
fn figure8_prefix_merging_is_cse() {
    let mut plan = PlanGraph::new();
    plan.add_source("S1", Schema::ints(2), None).unwrap();
    plan.add_source("S2", Schema::ints(2), None).unwrap();
    let prefix = |_: i64| {
        LogicalPlan::source("S1")
            .select(Predicate::attr_eq_const(0, 5i64))
            .followed_by(
                LogicalPlan::source("S2"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                    window: 100,
                },
            )
    };
    // Suffix selections over the sequence output (positions 2,3 are the S2
    // half of the concatenated schema).
    let q1 = prefix(0).select(Predicate::attr_eq_const(2, 1i64));
    let q2 = prefix(0).select(Predicate::attr_eq_const(2, 2i64));
    let a = plan.add_query(&q1).unwrap();
    let b = plan.add_query(&q2).unwrap();
    let trace = Optimizer::new(OptimizerConfig::default())
        .optimize(&mut plan)
        .unwrap();

    // The duplicated σθ1 and ;θf collapsed (CSE via merge deduplication).
    assert!(trace.count("s_sigma") >= 1);
    assert_eq!(trace.count("s_seq"), 1, "shared ; prefix (Figure 8(c))");
    let seqs: Vec<_> = plan
        .mops()
        .filter(|n| {
            n.members
                .iter()
                .any(|m| matches!(m.def, rumor::OpDef::Sequence(_)))
        })
        .collect();
    assert_eq!(seqs.len(), 1);
    assert_eq!(seqs[0].members.len(), 1, "one shared ; member");
    // Suffix selections merged over the single ; output: the FR index.
    let fr = plan
        .mops()
        .find(|n| n.kind == MopKind::IndexedSelect && n.members.len() == 2)
        .expect("σθ2/σθ2' share one indexed m-op");
    assert_eq!(
        fr.members[0].inputs[0], fr.members[1].inputs[0],
        "both read the shared ; output stream"
    );
    assert_ne!(plan.query_output(a), plan.query_output(b));
    plan.validate().unwrap();
}

/// The duality of Figures 2 and 3: sτ merges a row (same stream, many
/// operators), cτ merges a column (same definition, sharable streams).
#[test]
fn figure2_and_3_duality() {
    let mut plan = PlanGraph::new();
    plan.add_source("S", Schema::ints(2), None).unwrap();
    let alpha = |w| AggSpec {
        func: AggFunc::Sum,
        input: Expr::col(1),
        group_by: vec![],
        window: w,
    };
    // A 2x2 grid: two sharable input streams (σ1, σ2 over S) × two
    // aggregation definitions (windows 10 and 20).
    for c in [1i64, 2] {
        for w in [10u64, 20] {
            plan.add_query(
                &LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, c))
                    .aggregate(alpha(w)),
            )
            .unwrap();
        }
    }
    Optimizer::new(OptimizerConfig::default())
        .optimize(&mut plan)
        .unwrap();
    plan.validate().unwrap();
    // One σ m-op; per aggregation definition one channel m-op (columns of
    // Figure 3). sα cannot merge across windows, cα can merge across
    // streams: 1 + 2 m-ops.
    assert_eq!(plan.mop_count(), 3);
    assert_eq!(
        plan.mops()
            .filter(|n| n.kind == MopKind::FragmentAggregate)
            .count(),
        2
    );
}

/// Rule-application order produces the documented deterministic plan: the
/// rewrite trace lists every merge with its rule name (§7's conflict
/// resolution, implemented via priorities).
#[test]
fn rewrite_trace_is_deterministic() {
    let build = || {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        for c in 0..4i64 {
            plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c)))
                .unwrap();
        }
        let trace = Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        trace
            .entries
            .iter()
            .map(|e| (e.rule, e.group.clone(), e.target))
            .collect::<Vec<_>>()
    };
    assert_eq!(build(), build());
}
