//! Integration tests spanning the full stack through the query language:
//! parse → lower → register → optimize → session → observe results.

use rumor::{EventRuntime, OptimizerConfig, QueryId, Rumor, Tuple, Value};

fn engine(script: &str) -> Rumor {
    let mut r = Rumor::new(OptimizerConfig::default());
    r.execute(script).unwrap();
    r.optimize().unwrap();
    r
}

/// Pushes events through a fresh single-threaded session and returns the
/// catch-all results.
fn run(r: &Rumor, events: &[(&str, Tuple)]) -> Vec<(QueryId, Tuple)> {
    let mut session = r.session().build().unwrap();
    for (src, t) in events {
        let s = r.source_id(src).unwrap();
        session.push(s, t.clone()).unwrap();
    }
    session.finish().unwrap();
    session.collect_all()
}

fn of(results: &[(QueryId, Tuple)], q: QueryId) -> Vec<&Tuple> {
    results
        .iter()
        .filter(|(qi, _)| *qi == q)
        .map(|(_, t)| t)
        .collect()
}

#[test]
fn projection_computes_values() {
    let r = engine(
        "CREATE STREAM s (a INT, b INT);
         QUERY q AS SELECT b, a * 10 + b AS combo FROM s WHERE a > 1;",
    );
    let results = run(
        &r,
        &[
            ("s", Tuple::ints(0, &[1, 5])), // filtered
            ("s", Tuple::ints(1, &[3, 7])),
        ],
    );
    let got = of(&results, r.query_id("q").unwrap());
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].values(), &[Value::Int(7), Value::Int(37)]);
}

#[test]
fn join_within_window() {
    let r = engine(
        "CREATE STREAM l (k INT, x INT);
         CREATE STREAM r (k INT, y INT);
         QUERY j AS SELECT * FROM l JOIN r ON l.k = r.k WITHIN 5;",
    );
    let results = run(
        &r,
        &[
            ("l", Tuple::ints(0, &[7, 1])),
            ("r", Tuple::ints(2, &[7, 2])), // joins
            ("r", Tuple::ints(9, &[7, 3])), // expired
        ],
    );
    let got = of(&results, r.query_id("j").unwrap());
    assert_eq!(got.len(), 1);
    assert_eq!(got[0], &Tuple::ints(2, &[7, 1, 7, 2]));
}

#[test]
fn group_by_aggregate_stream() {
    let r = engine(
        "CREATE STREAM m (node INT, v INT);
         QUERY peak AS SELECT node, MAX(v) AS peak FROM m [RANGE 10] GROUP BY node;",
    );
    let events: Vec<(&str, Tuple)> = [(0, 1, 5), (1, 2, 9), (2, 1, 3), (15, 1, 1)]
        .into_iter()
        .map(|(ts, node, v)| ("m", Tuple::ints(ts, &[node, v])))
        .collect();
    let results = run(&r, &events);
    let got = of(&results, r.query_id("peak").unwrap());
    assert_eq!(got.len(), 4);
    assert_eq!(got[0], &Tuple::ints(0, &[1, 5]));
    assert_eq!(got[1], &Tuple::ints(1, &[2, 9]));
    assert_eq!(got[2], &Tuple::ints(2, &[1, 5])); // max(5, 3)
    assert_eq!(got[3], &Tuple::ints(15, &[1, 1])); // window slid past 5
}

#[test]
fn sequence_pattern_via_language() {
    let r = engine(
        "CREATE STREAM a (k INT);
         CREATE STREAM b (k INT);
         QUERY p AS PATTERN a AS x WHERE x.k = 1 THEN b AS y WHERE x.k = y.k WITHIN 10;",
    );
    // The query owner subscribes; the pattern's single match arrives on
    // the subscription, not in the catch-all.
    let mut session = r.session().build().unwrap();
    let mut sub = session.subscribe_named("p").unwrap();
    let sa = r.source_id("a").unwrap();
    let sb = r.source_id("b").unwrap();
    session.push(sa, Tuple::ints(0, &[1])).unwrap();
    session.push(sb, Tuple::ints(1, &[1])).unwrap(); // match + consume
    session.push(sb, Tuple::ints(2, &[1])).unwrap(); // no instance left
    session.finish().unwrap();
    assert_eq!(sub.drain().len(), 1);
    assert!(session.collect_all().is_empty());
}

#[test]
fn shared_script_workload_counts() {
    // Many similar queries via the language; sharing must not change what
    // each query sees.
    let mut script = String::from("CREATE STREAM s (a INT, b INT);\n");
    for c in 0..8 {
        script.push_str(&format!("QUERY q{c} AS SELECT * FROM s WHERE a = {c};\n"));
    }
    let r = engine(&script);
    assert_eq!(r.plan().mop_count(), 1, "all selections share one m-op");
    let events: Vec<(&str, Tuple)> = (0..80u64)
        .map(|ts| ("s", Tuple::ints(ts, &[(ts % 8) as i64, 0])))
        .collect();
    let results = run(&r, &events);
    for c in 0..8 {
        let q = r.query_id(&format!("q{c}")).unwrap();
        assert_eq!(of(&results, q).len(), 10, "query {c}");
    }
}

#[test]
fn define_subplans_share_via_rules() {
    // Two queries over the same DEFINE: the aggregation runs once.
    let r = engine(
        "CREATE STREAM cpu (pid INT, load INT);
         DEFINE sm AS SELECT pid, AVG(load) AS load FROM cpu [RANGE 5] GROUP BY pid;
         QUERY hot  AS SELECT * FROM sm WHERE load > 80.0;
         QUERY cold AS SELECT * FROM sm WHERE load < 5.0;",
    );
    // α (+rename π) shared via CSE; both selections indexed together.
    let aggs = r
        .plan()
        .mops()
        .filter(|n| {
            n.members
                .iter()
                .any(|m| matches!(m.def, rumor::OpDef::Aggregate(_)))
        })
        .count();
    assert_eq!(aggs, 1, "one shared aggregation");
    let results = run(
        &r,
        &[
            ("cpu", Tuple::ints(0, &[1, 90])),
            ("cpu", Tuple::ints(1, &[2, 1])),
        ],
    );
    assert_eq!(of(&results, r.query_id("hot").unwrap()).len(), 1);
    assert_eq!(of(&results, r.query_id("cold").unwrap()).len(), 1);
}

#[test]
fn parse_errors_surface_cleanly() {
    let mut r = Rumor::new(OptimizerConfig::default());
    let err = r.execute("SELECT FROM nowhere").unwrap_err();
    assert!(matches!(err, rumor::RumorError::Parse { .. }));
    let err = r
        .execute("CREATE STREAM s (a INT); SELECT * FROM unknown_stream;")
        .unwrap_err();
    assert!(matches!(err, rumor::RumorError::Unknown(_)));
}
