//! Integration tests spanning the full stack through the query language:
//! parse → lower → register → optimize → execute → observe results.

use rumor::{CollectingSink, OptimizerConfig, Rumor, Tuple, Value};

fn engine(script: &str) -> Rumor {
    let mut r = Rumor::new(OptimizerConfig::default());
    r.execute(script).unwrap();
    r.optimize().unwrap();
    r
}

#[test]
fn projection_computes_values() {
    let r = engine(
        "CREATE STREAM s (a INT, b INT);
         QUERY q AS SELECT b, a * 10 + b AS combo FROM s WHERE a > 1;",
    );
    let mut rt = r.runtime().unwrap();
    let mut sink = CollectingSink::default();
    let src = r.source_id("s").unwrap();
    rt.push(src, Tuple::ints(0, &[1, 5]), &mut sink).unwrap(); // filtered
    rt.push(src, Tuple::ints(1, &[3, 7]), &mut sink).unwrap();
    let q = r.query_id("q").unwrap();
    let got = sink.of(q);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].values(), &[Value::Int(7), Value::Int(37)]);
}

#[test]
fn join_within_window() {
    let r = engine(
        "CREATE STREAM l (k INT, x INT);
         CREATE STREAM r (k INT, y INT);
         QUERY j AS SELECT * FROM l JOIN r ON l.k = r.k WITHIN 5;",
    );
    let mut rt = r.runtime().unwrap();
    let mut sink = CollectingSink::default();
    let ls = r.source_id("l").unwrap();
    let rs = r.source_id("r").unwrap();
    rt.push(ls, Tuple::ints(0, &[7, 1]), &mut sink).unwrap();
    rt.push(rs, Tuple::ints(2, &[7, 2]), &mut sink).unwrap(); // joins
    rt.push(rs, Tuple::ints(9, &[7, 3]), &mut sink).unwrap(); // expired
    let q = r.query_id("j").unwrap();
    let got = sink.of(q);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0], &Tuple::ints(2, &[7, 1, 7, 2]));
}

#[test]
fn group_by_aggregate_stream() {
    let r = engine(
        "CREATE STREAM m (node INT, v INT);
         QUERY peak AS SELECT node, MAX(v) AS peak FROM m [RANGE 10] GROUP BY node;",
    );
    let mut rt = r.runtime().unwrap();
    let mut sink = CollectingSink::default();
    let src = r.source_id("m").unwrap();
    for (ts, node, v) in [(0, 1, 5), (1, 2, 9), (2, 1, 3), (15, 1, 1)] {
        rt.push(src, Tuple::ints(ts, &[node, v]), &mut sink)
            .unwrap();
    }
    let q = r.query_id("peak").unwrap();
    let got = sink.of(q);
    assert_eq!(got.len(), 4);
    assert_eq!(got[0], &Tuple::ints(0, &[1, 5]));
    assert_eq!(got[1], &Tuple::ints(1, &[2, 9]));
    assert_eq!(got[2], &Tuple::ints(2, &[1, 5])); // max(5, 3)
    assert_eq!(got[3], &Tuple::ints(15, &[1, 1])); // window slid past 5
}

#[test]
fn sequence_pattern_via_language() {
    let r = engine(
        "CREATE STREAM a (k INT);
         CREATE STREAM b (k INT);
         QUERY p AS PATTERN a AS x WHERE x.k = 1 THEN b AS y WHERE x.k = y.k WITHIN 10;",
    );
    let mut rt = r.runtime().unwrap();
    let mut sink = CollectingSink::default();
    let sa = r.source_id("a").unwrap();
    let sb = r.source_id("b").unwrap();
    rt.push(sa, Tuple::ints(0, &[1]), &mut sink).unwrap();
    rt.push(sb, Tuple::ints(1, &[1]), &mut sink).unwrap(); // match + consume
    rt.push(sb, Tuple::ints(2, &[1]), &mut sink).unwrap(); // no instance left
    let q = r.query_id("p").unwrap();
    assert_eq!(sink.of(q).len(), 1);
}

#[test]
fn shared_script_workload_counts() {
    // Many similar queries via the language; sharing must not change what
    // each query sees.
    let mut script = String::from("CREATE STREAM s (a INT, b INT);\n");
    for c in 0..8 {
        script.push_str(&format!("QUERY q{c} AS SELECT * FROM s WHERE a = {c};\n"));
    }
    let r = engine(&script);
    assert_eq!(r.plan().mop_count(), 1, "all selections share one m-op");
    let mut rt = r.runtime().unwrap();
    let mut sink = CollectingSink::default();
    let src = r.source_id("s").unwrap();
    for ts in 0..80u64 {
        rt.push(src, Tuple::ints(ts, &[(ts % 8) as i64, 0]), &mut sink)
            .unwrap();
    }
    for c in 0..8 {
        let q = r.query_id(&format!("q{c}")).unwrap();
        assert_eq!(sink.of(q).len(), 10, "query {c}");
    }
}

#[test]
fn define_subplans_share_via_rules() {
    // Two queries over the same DEFINE: the aggregation runs once.
    let r = engine(
        "CREATE STREAM cpu (pid INT, load INT);
         DEFINE sm AS SELECT pid, AVG(load) AS load FROM cpu [RANGE 5] GROUP BY pid;
         QUERY hot  AS SELECT * FROM sm WHERE load > 80.0;
         QUERY cold AS SELECT * FROM sm WHERE load < 5.0;",
    );
    // α (+rename π) shared via CSE; both selections indexed together.
    let aggs = r
        .plan()
        .mops()
        .filter(|n| {
            n.members
                .iter()
                .any(|m| matches!(m.def, rumor::OpDef::Aggregate(_)))
        })
        .count();
    assert_eq!(aggs, 1, "one shared aggregation");
    let mut rt = r.runtime().unwrap();
    let mut sink = CollectingSink::default();
    let src = r.source_id("cpu").unwrap();
    rt.push(src, Tuple::ints(0, &[1, 90]), &mut sink).unwrap();
    rt.push(src, Tuple::ints(1, &[2, 1]), &mut sink).unwrap();
    assert_eq!(sink.of(r.query_id("hot").unwrap()).len(), 1);
    assert_eq!(sink.of(r.query_id("cold").unwrap()).len(), 1);
}

#[test]
fn parse_errors_surface_cleanly() {
    let mut r = Rumor::new(OptimizerConfig::default());
    let err = r.execute("SELECT FROM nowhere").unwrap_err();
    assert!(matches!(err, rumor_types::RumorError::Parse { .. }));
    let err = r
        .execute("CREATE STREAM s (a INT); SELECT * FROM unknown_stream;")
        .unwrap_err();
    assert!(matches!(err, rumor_types::RumorError::Unknown(_)));
}
