//! End-to-end optimizer soundness: for random multi-query workloads, the
//! fully optimized plan (all rules, channels included) must produce exactly
//! the same per-query results as the naive one-operator-chain-per-query
//! plan — §2.2's input/output-equivalence obligation lifted from single
//! m-ops to whole plans.

use proptest::prelude::*;

use rumor::{
    AggFunc, AggSpec, CollectingSink, IterSpec, JoinSpec, LogicalPlan, Optimizer, OptimizerConfig,
    PlanGraph, Predicate, QueryId, Schema, SeqSpec, Tuple,
};
use rumor_engine::ExecutablePlan;
use rumor_expr::{CmpOp, Expr, NamedExpr, SchemaMap};

/// A small randomized query template pool: selections, aggregates over a
/// (selected) stream, sequences and iterations with per-query windows, and
/// window joins — enough to exercise every rule in Table 1.
fn query_strategy() -> impl Strategy<Value = LogicalPlan> {
    let sel = (0usize..3, 0i64..4)
        .prop_map(|(a, c)| LogicalPlan::source("S").select(Predicate::attr_eq_const(a, c)));
    let agg = (
        0i64..4,
        prop_oneof![Just(AggFunc::Sum), Just(AggFunc::Max)],
        1u64..20,
    )
        .prop_map(|(c, func, w)| {
            LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, c))
                .aggregate(AggSpec {
                    func,
                    input: Expr::col(1),
                    group_by: vec![2],
                    window: w,
                })
        });
    let join = (1u64..20).prop_map(|w| {
        LogicalPlan::source("S").join(
            LogicalPlan::source("T"),
            JoinSpec {
                predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                window: w,
            },
        )
    });
    let seq = (0i64..4, 1u64..20).prop_map(|(c, w)| {
        LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(0, c))
            .followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::rcol(1), Expr::lit(c)),
                    window: w,
                },
            )
    });
    let mu = (0i64..4, 1u64..20).prop_map(|(c, w)| {
        LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(0, c))
            .iterate(
                LogicalPlan::source("T"),
                IterSpec {
                    filter: Predicate::cmp(CmpOp::Ne, Expr::col(2), Expr::rcol(2)),
                    rebind: Predicate::and(vec![
                        Predicate::cmp(CmpOp::Eq, Expr::col(2), Expr::rcol(2)),
                        Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
                    ]),
                    rebind_map: SchemaMap::new(vec![
                        NamedExpr::new("a0", Expr::col(0)),
                        NamedExpr::new("a1", Expr::rcol(1)),
                        NamedExpr::new("a2", Expr::col(2)),
                    ]),
                    window: w,
                },
            )
    });
    prop_oneof![sel, agg, join, seq, mu]
}

fn events_strategy() -> impl Strategy<Value = Vec<(bool, Tuple)>> {
    prop::collection::vec((any::<bool>(), prop::collection::vec(0i64..4, 3)), 1..100).prop_map(
        |items| {
            items
                .into_iter()
                .enumerate()
                .map(|(ts, (is_s, vals))| (is_s, Tuple::ints(ts as u64, &vals)))
                .collect()
        },
    )
}

fn build_plan(queries: &[LogicalPlan], config: OptimizerConfig) -> PlanGraph {
    let mut plan = PlanGraph::new();
    plan.add_source("S", Schema::ints(3), None).unwrap();
    plan.add_source("T", Schema::ints(3), None).unwrap();
    for q in queries {
        plan.add_query(q).unwrap();
    }
    Optimizer::new(config).optimize(&mut plan).unwrap();
    plan.validate().unwrap();
    plan
}

fn run_plan(
    queries: &[LogicalPlan],
    config: OptimizerConfig,
    events: &[(bool, Tuple)],
) -> Vec<Vec<String>> {
    let mut plan = PlanGraph::new();
    let s = plan.add_source("S", Schema::ints(3), None).unwrap();
    let t = plan.add_source("T", Schema::ints(3), None).unwrap();
    let qids: Vec<QueryId> = queries.iter().map(|q| plan.add_query(q).unwrap()).collect();
    Optimizer::new(config).optimize(&mut plan).unwrap();
    plan.validate().unwrap();
    let mut exec = ExecutablePlan::new(&plan).unwrap();
    let mut sink = CollectingSink::default();
    for (is_s, tuple) in events {
        let src = if *is_s { s } else { t };
        exec.push(src, tuple.clone(), &mut sink).unwrap();
    }
    qids.iter()
        .map(|&q| {
            let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
            v.sort();
            v
        })
        .collect()
}

/// The optimized plan's *shape* — m-op count plus the sorted multiset of
/// (kind, member count) — which must not depend on the order queries were
/// registered in.
fn plan_shape(plan: &PlanGraph) -> (usize, Vec<String>) {
    let mut kinds: Vec<String> = plan
        .mops()
        .map(|n| format!("{:?}x{}", n.kind, n.members.len()))
        .collect();
    kinds.sort();
    (plan.mop_count(), kinds)
}

/// Query sets whose greedy outcome historically depended on registration
/// order: overlapping aggregate families over CSE-shared select outputs
/// (the channel-lockout shape), plus a mixed pool covering every rule.
fn permutation_workloads() -> Vec<(&'static str, Vec<LogicalPlan>)> {
    let agg = |input_col: usize, window: u64| AggSpec {
        func: AggFunc::Sum,
        input: Expr::col(input_col),
        group_by: vec![],
        window,
    };
    let overlapping: Vec<LogicalPlan> = (0..3i64)
        .map(|c| {
            LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, c))
                .aggregate(agg(1, 8))
        })
        .chain((0..5i64).map(|c| {
            LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, c))
                .aggregate(agg(2, 8))
        }))
        .collect();
    let mixed: Vec<LogicalPlan> = (0..4i64)
        .map(|c| LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c)))
        .chain((0..3i64).map(|c| {
            LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(1, c))
                .followed_by(
                    LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(CmpOp::Eq, Expr::rcol(1), Expr::lit(c)),
                        window: 12,
                    },
                )
        }))
        .chain(std::iter::once(LogicalPlan::source("S").join(
            LogicalPlan::source("T"),
            JoinSpec {
                predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                window: 9,
            },
        )))
        .collect();
    vec![("overlapping_aggs", overlapping), ("mixed_rules", mixed)]
}

/// Registration order must not change the optimized plan's shape — the
/// greedy driver orders rewrite candidates canonically (structural keys),
/// not by m-op id. Pinned for both search strategies.
#[test]
fn plan_shape_invariant_under_registration_order() {
    for (name, queries) in permutation_workloads() {
        for config in [OptimizerConfig::default(), OptimizerConfig::cost_based()] {
            let reference = plan_shape(&build_plan(&queries, config.clone()));
            let n = queries.len();
            let mut orders: Vec<Vec<LogicalPlan>> = Vec::new();
            orders.push(queries.iter().rev().cloned().collect());
            for rot in [1, n / 2, n - 1] {
                let mut q = queries.clone();
                q.rotate_left(rot);
                orders.push(q);
            }
            // Interleave front/back halves.
            let (front, back) = queries.split_at(n / 2);
            orders.push(
                front
                    .iter()
                    .zip(back.iter())
                    .flat_map(|(a, b)| [b.clone(), a.clone()])
                    .chain(queries[2 * (n / 2).min(back.len())..].iter().cloned())
                    .collect(),
            );
            for (i, order) in orders.iter().enumerate() {
                let shape = plan_shape(&build_plan(order, config.clone()));
                assert_eq!(
                    shape, reference,
                    "{name}: permutation {i} changed the plan shape ({config:?})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimized_equals_unoptimized(
        queries in prop::collection::vec(query_strategy(), 1..10),
        events in events_strategy(),
    ) {
        let naive = run_plan(&queries, OptimizerConfig::unoptimized(), &events);
        let shared = run_plan(&queries, OptimizerConfig::without_channels(), &events);
        prop_assert_eq!(&naive, &shared, "s-rules changed results");
        let channel = run_plan(&queries, OptimizerConfig::default(), &events);
        prop_assert_eq!(&naive, &channel, "c-rules changed results");
    }

    /// The cost-based search must (a) preserve results exactly and (b)
    /// never end with *more* m-ops than the greedy driver on the same
    /// query set — it explores the same move space, just in a better
    /// order.
    #[test]
    fn cost_based_no_worse_than_greedy(
        queries in prop::collection::vec(query_strategy(), 1..10),
        events in events_strategy(),
    ) {
        let greedy = build_plan(&queries, OptimizerConfig::default());
        let cost = build_plan(&queries, OptimizerConfig::cost_based());
        prop_assert!(
            cost.mop_count() <= greedy.mop_count(),
            "cost-based {} m-ops vs greedy {}",
            cost.mop_count(),
            greedy.mop_count()
        );
        let naive = run_plan(&queries, OptimizerConfig::unoptimized(), &events);
        let searched = run_plan(&queries, OptimizerConfig::cost_based(), &events);
        prop_assert_eq!(&naive, &searched, "cost-based search changed results");
    }
}
