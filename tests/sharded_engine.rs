//! Sharded-runtime equivalence: running the optimized shared plan under
//! the partition-parallel runtime (any worker count) must produce, per
//! query, exactly the result multiset of the single-threaded per-event
//! engine — across all three partitionability verdicts (stateless
//! round-robin, key-partitioned hashing, pinned single-worker), and for
//! mixed plans where only some components are partitionable.

use proptest::prelude::*;

use rumor::{
    CollectingSink, ExecutablePlan, LogicalPlan, Optimizer, OptimizerConfig, PlanGraph, Predicate,
    QueryId, Schema, SeqSpec, ShardedRuntime, SourceRoute, Tuple, Verdict,
};
use rumor_expr::{CmpOp, Expr, NamedExpr, SchemaMap};
use rumor_types::SourceId;

/// Stateless templates over source `U`: partition-transparent.
fn stateless_query() -> impl Strategy<Value = LogicalPlan> {
    let sel = (0usize..3, 0i64..4)
        .prop_map(|(a, c)| LogicalPlan::source("U").select(Predicate::attr_eq_const(a, c)));
    let proj = (0i64..4, 1i64..4).prop_map(|(c, k)| {
        LogicalPlan::source("U")
            .select(Predicate::attr_eq_const(0, c))
            .project(SchemaMap::new(vec![NamedExpr::new(
                "x",
                Expr::col(1).mul(Expr::lit(k)),
            )]))
    });
    prop_oneof![sel, proj]
}

/// Keyed templates over the `S`/`T` pair: sequences whose AI index keys on
/// attribute 0 of both sides, and iterations whose keyed mode is sound and
/// key-preserving — the key-partitionable verdict.
fn keyed_query() -> impl Strategy<Value = LogicalPlan> {
    let seq = (0i64..4, 1u64..25).prop_map(|(c, w)| {
        LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(1, c))
            .followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    window: w,
                },
            )
    });
    let mu = (0i64..4, 1u64..25).prop_map(|(c, w)| {
        LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(1, c))
            .iterate(
                LogicalPlan::source("T"),
                rumor::IterSpec {
                    filter: Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
                    rebind: Predicate::and(vec![
                        Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                        Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
                    ]),
                    rebind_map: SchemaMap::new(vec![
                        NamedExpr::new("a0", Expr::col(0)),
                        NamedExpr::new("a1", Expr::rcol(1)),
                        NamedExpr::new("a2", Expr::col(2)),
                    ]),
                    window: w,
                },
            )
    });
    prop_oneof![seq, mu]
}

/// Pinned templates over the `V`/`W` pair: a sequence with no equi key
/// (every instance can match every event), forcing single-worker execution.
fn pinned_query() -> impl Strategy<Value = LogicalPlan> {
    (1u64..25).prop_map(|w| {
        LogicalPlan::source("V").followed_by(
            LogicalPlan::source("W"),
            SeqSpec {
                predicate: Predicate::cmp(CmpOp::Lt, Expr::col(2), Expr::rcol(2)),
                window: w,
            },
        )
    })
}

/// Aggregate templates: window aggregations over `A` with several group-by
/// shapes (grouped → key-partitionable via the group-by intersection;
/// ungrouped → opaque → pinned), plus aggregations over the keyed source
/// `S`, whose group-by either contains the sequences' exact key attribute
/// (staying keyed) or conflicts with it (pinning the S/T component).
fn agg_query() -> impl Strategy<Value = LogicalPlan> {
    let funcs = prop_oneof![
        Just(rumor::AggFunc::Sum),
        Just(rumor::AggFunc::Count),
        Just(rumor::AggFunc::Max),
    ];
    let group_bys = prop_oneof![Just(vec![0usize]), Just(vec![0usize, 1]), Just(Vec::new()),];
    let srcs = prop_oneof![Just("A"), Just("S")];
    (funcs, group_bys, srcs, 1u64..25).prop_map(|(func, group_by, src, window)| {
        LogicalPlan::source(src).aggregate(rumor::AggSpec {
            func,
            input: Expr::col(2),
            group_by,
            window,
        })
    })
}

fn any_query() -> impl Strategy<Value = LogicalPlan> {
    prop_oneof![
        stateless_query(),
        keyed_query(),
        pinned_query(),
        agg_query()
    ]
}

/// Events spread over the six sources. Timestamps are non-decreasing but
/// may tie (`advance == false`), exercising the hybrid drain's per-event
/// tie fallback under sharding.
fn events_strategy() -> impl Strategy<Value = Vec<(usize, bool, Vec<i64>)>> {
    prop::collection::vec(
        (0usize..5, any::<bool>(), prop::collection::vec(0i64..4, 3)),
        1..150,
    )
}

fn build(queries: &[LogicalPlan]) -> (PlanGraph, Vec<QueryId>, Vec<SourceId>) {
    let mut plan = PlanGraph::new();
    let sources = ["U", "S", "T", "V", "W", "A"]
        .iter()
        .map(|n| plan.add_source(*n, Schema::ints(3), None).unwrap())
        .collect::<Vec<_>>();
    let qs: Vec<QueryId> = queries.iter().map(|q| plan.add_query(q).unwrap()).collect();
    Optimizer::new(OptimizerConfig::default())
        .optimize(&mut plan)
        .unwrap();
    plan.validate().unwrap();
    (plan, qs, sources)
}

fn to_events(raw: &[(usize, bool, Vec<i64>)], sources: &[SourceId]) -> Vec<(SourceId, Tuple)> {
    let mut ts = 0u64;
    raw.iter()
        .enumerate()
        .map(|(i, (which, advance, vals))| {
            if *advance {
                ts += 1;
            }
            // Source index 0 is U; the S/T and V/W pairs alternate so both
            // stateful pairs see instance and event tuples.
            let src = sources[match which {
                0 => 0,
                1 => 1 + (i % 2),       // S or T
                2 => 3 + (i % 2),       // V or W
                3 => 5,                 // A
                _ => i % sources.len(), // everything
            }];
            (src, Tuple::ints(ts, vals))
        })
        .collect()
}

fn per_query_sorted(sink: &CollectingSink, qs: &[QueryId]) -> Vec<Vec<String>> {
    qs.iter()
        .map(|&q| {
            let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
            v.sort();
            v
        })
        .collect()
}

fn reference(plan: &PlanGraph, events: &[(SourceId, Tuple)]) -> CollectingSink {
    let mut exec = ExecutablePlan::new(plan).unwrap();
    let mut sink = CollectingSink::default();
    for (src, t) in events {
        exec.push(*src, t.clone(), &mut sink).unwrap();
    }
    sink
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded execution with n ∈ {1, 2, 4, 7} workers reproduces the
    /// single-threaded per-event engine's per-query result multisets on
    /// workloads mixing all three partitionability verdicts.
    #[test]
    fn sharded_matches_per_event_engine(
        queries in prop::collection::vec(any_query(), 1..8),
        raw in events_strategy(),
    ) {
        let (plan, qs, sources) = build(&queries);
        let events = to_events(&raw, &sources);
        let want = per_query_sorted(&reference(&plan, &events), &qs);

        for n in [1usize, 2, 4, 7] {
            let mut rt: ShardedRuntime<CollectingSink> =
                ShardedRuntime::new(&plan, n).unwrap();
            rt.push_batch(&events).unwrap();
            prop_assert_eq!(rt.events_in(), events.len() as u64);
            let got = per_query_sorted(&rt.finish(), &qs);
            prop_assert_eq!(&got, &want, "sharded n={} diverged", n);
        }
    }

    /// Single-event pushes through the sharded runtime agree with the
    /// batched entry point (state lives in the workers across calls).
    #[test]
    fn sharded_push_matches_push_batch(
        queries in prop::collection::vec(keyed_query(), 1..4),
        raw in events_strategy(),
    ) {
        let (plan, qs, sources) = build(&queries);
        let events = to_events(&raw, &sources);
        let mut a: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 3).unwrap();
        for (src, t) in &events {
            a.push(*src, t.clone()).unwrap();
        }
        let mut b: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 3).unwrap();
        b.push_batch(&events).unwrap();
        let (a, b) = (a.finish(), b.finish());
        prop_assert_eq!(per_query_sorted(&a, &qs), per_query_sorted(&b, &qs));
    }
}

/// The mixed plan's scheme exposes all three verdicts at once, and the
/// routes follow them: U round-robins, S/T hash on attribute 0, V/W pin.
#[test]
fn mixed_plan_scheme_has_all_three_verdicts() {
    let queries = vec![
        LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
        LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(1, 2i64))
            .followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    window: 10,
                },
            ),
        LogicalPlan::source("V").followed_by(
            LogicalPlan::source("W"),
            SeqSpec {
                predicate: Predicate::cmp(CmpOp::Lt, Expr::col(2), Expr::rcol(2)),
                window: 10,
            },
        ),
    ];
    let (plan, _, sources) = build(&queries);
    let rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 4).unwrap();
    let scheme = rt.scheme();
    // U plus the unconsumed source A are the stateless components.
    assert_eq!(scheme.count(Verdict::Stateless), 2);
    assert_eq!(scheme.count(Verdict::Keyed), 1);
    assert_eq!(scheme.count(Verdict::Pinned), 1);
    assert_eq!(*scheme.route(sources[0]), SourceRoute::RoundRobin);
    assert_eq!(*scheme.route(sources[1]), SourceRoute::Key(vec![0]));
    assert_eq!(*scheme.route(sources[2]), SourceRoute::Key(vec![0]));
    assert_eq!(*scheme.route(sources[3]), SourceRoute::Pinned);
    assert_eq!(*scheme.route(sources[4]), SourceRoute::Pinned);
    assert!(scheme.is_parallelizable());
}
