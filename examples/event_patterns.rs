//! Event pattern queries two ways (§4.2–§4.3): run Cayuga-style automata
//! directly in the baseline event engine, translate the same automata into
//! RUMOR query plans, and verify both evaluations agree tuple-for-tuple —
//! with each translated query observed through its own subscription.
//!
//! Run with `cargo run --example event_patterns`.

use std::collections::HashMap;

use rumor::workloads::synth::{st_events, StTag};
use rumor::workloads::Params;
use rumor::{
    Automaton, CayugaEngine, EventRuntime, OptimizerConfig, Predicate, QueryId, Rumor, Schema,
    Subscription,
};
use rumor_expr::{CmpOp, Expr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::ints(3);

    // Three sequence patterns: "an S event with a0 = c, followed within 50
    // ticks by a T event with the same a1".
    let automata: Vec<Automaton> = (0..3)
        .map(|c| {
            Automaton::sequence(
                "S",
                &schema,
                Predicate::attr_eq_const(0, c),
                "T",
                &schema,
                Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                50,
                QueryId(c as u32),
            )
        })
        .collect();

    // --- Run them natively in the Cayuga-style engine. -------------------
    let mut cayuga = CayugaEngine::new();
    for a in &automata {
        cayuga.add_automaton(a);
    }
    println!(
        "cayuga forest: {} states for {} queries (prefix merging shares the start state)",
        cayuga.state_count(),
        automata.len()
    );

    let params = Params {
        num_queries: 3,
        num_attrs: 3,
        const_domain: 4,
        num_tuples: 2000,
        ..Params::default()
    };
    let events = st_events(&params);
    let mut cayuga_results: Vec<(QueryId, String)> = Vec::new();
    for ev in &events {
        let stream = match ev.tag {
            StTag::S => "S",
            StTag::T => "T",
        };
        cayuga.on_event(stream, &ev.tuple, &mut |q, t| {
            cayuga_results.push((q, t.to_string()))
        });
    }

    // --- Translate to RUMOR plans and run the optimized shared plan. ------
    let mut schemas = HashMap::new();
    schemas.insert("S".to_string(), schema.clone());
    schemas.insert("T".to_string(), schema.clone());
    let mut engine = Rumor::new(OptimizerConfig::default());
    let s = engine.add_source("S", schema.clone(), None)?;
    let t = engine.add_source("T", schema.clone(), None)?;
    let mut query_map: Vec<(QueryId, QueryId)> = Vec::new(); // (cayuga, rumor)
    for a in &automata {
        for (cq, logical) in rumor_cayuga::translate(a, &schemas)? {
            let rq = engine.register(&logical)?;
            query_map.push((cq, rq));
        }
    }
    let trace = engine.optimize()?;
    println!(
        "rumor plan after optimization: {} m-ops ({} rewrites: {:?})",
        engine.plan().mop_count(),
        trace.entries.len(),
        trace.entries.iter().map(|e| e.rule).collect::<Vec<_>>()
    );

    // One session; each translated query gets its own subscription, so the
    // comparison below reads per-query result streams, not a shared sink.
    let mut session = engine.session().build()?;
    let mut subs: Vec<(QueryId, Subscription)> = query_map
        .iter()
        .map(|(cq, rq)| (*cq, session.subscribe(*rq)))
        .collect();
    for ev in &events {
        let src = match ev.tag {
            StTag::S => s,
            StTag::T => t,
        };
        session.push(src, ev.tuple.clone())?;
    }
    session.finish()?;

    // --- Compare per-query result multisets. ------------------------------
    for (cq, sub) in &mut subs {
        let mut from_cayuga: Vec<&String> = cayuga_results
            .iter()
            .filter(|(q, _)| q == cq)
            .map(|(_, t)| t)
            .collect();
        let mut from_rumor: Vec<String> = sub.drain().iter().map(|t| t.to_string()).collect();
        from_cayuga.sort();
        from_rumor.sort();
        let agree = from_cayuga.len() == from_rumor.len()
            && from_cayuga.iter().zip(&from_rumor).all(|(a, b)| *a == b);
        println!(
            "query {cq}: cayuga {} results, rumor {} results — {}",
            from_cayuga.len(),
            from_rumor.len(),
            if agree { "identical" } else { "MISMATCH" }
        );
        assert!(agree, "translated plan must match the automaton");
    }
    println!("\ntranslation preserved the semantics for all queries ✓");
    Ok(())
}
