//! Channel-based sharing (§3 and §4.4): Workload 3's template
//! `Si ;θ T` over ten *sharable* streams, evaluated once with channels and
//! once without, over identical input content — the experiment behind
//! Figures 10(c) and 10(d).
//!
//! Run with `cargo run --release --example channel_sharing`.

use std::time::Instant;

use rumor::workloads::synth::{w3_channel_events, w3_round_robin_events, W3Event};
use rumor::workloads::{workload3, Params};
use rumor::{EventRuntime, Membership, OptimizerConfig, Rumor, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = 10;
    let params = Params::default().with_queries(100).with_tuples(40_000);
    let queries = workload3::generate(&params, capacity);

    // ------------------------------------------------------------------
    // Channel mode: the ten sharable streams arrive as ONE channel; rule c;
    // merges all sequence operators into a single channel m-op.
    // ------------------------------------------------------------------
    let mut engine = Rumor::new(OptimizerConfig::default());
    let c = engine.add_source_group("C", Schema::ints(10), capacity)?;
    let t = engine.add_source("T", Schema::ints(10), None)?;
    for q in &queries {
        engine.register(&q.channel_plan)?;
    }
    let trace = engine.optimize()?;
    println!(
        "channel plan: {} m-ops ({} rewrites, c_seq fired {} times)",
        engine.plan().mop_count(),
        trace.entries.len(),
        trace.count("c_seq")
    );

    // Channel input is a single-threaded capability (the partition router
    // has no channel routes), so the session omits `.workers(n)`.
    let mut session = engine.session().build()?;
    let start = Instant::now();
    let channel_events = w3_channel_events(&params, capacity);
    for ev in &channel_events {
        match ev {
            W3Event::Channel(tuple) => {
                session.push_channel(c, tuple.clone(), Membership::all(capacity))?
            }
            W3Event::T(tuple) => session.push(t, tuple.clone())?,
            W3Event::Si(..) => unreachable!(),
        }
    }
    session.finish()?;
    // Count logical stream tuples: one channel tuple on k streams is k
    // tuples (§3.1), which keeps the two feeds comparable.
    let logical: usize = channel_events
        .iter()
        .map(|e| match e {
            W3Event::Channel(_) => capacity,
            _ => 1,
        })
        .sum();
    let with_rate = logical as f64 / start.elapsed().as_secs_f64();
    let with_results = session.collect_all().len();
    println!(
        "  with channel:    {:>10.0} events/s ({} results)",
        with_rate, with_results
    );

    // ------------------------------------------------------------------
    // No-channel baseline: the same content as ten separate streams fed
    // round-robin (§5.2's fairness protocol).
    // ------------------------------------------------------------------
    let mut engine = Rumor::new(OptimizerConfig::without_channels());
    let mut sis = Vec::new();
    for i in 0..capacity {
        sis.push(engine.add_source(&format!("S{i}"), Schema::ints(10), Some("w3".into()))?);
    }
    let t = engine.add_source("T", Schema::ints(10), None)?;
    for q in &queries {
        engine.register(&q.plain_plan)?;
    }
    engine.optimize()?;
    println!(
        "plain plan:   {} m-ops (one shared ; per stream)",
        engine.plan().mop_count()
    );

    let mut session = engine.session().build()?;
    let start = Instant::now();
    let rr_events = w3_round_robin_events(&params, capacity);
    for ev in &rr_events {
        match ev {
            W3Event::Si(i, tuple) => session.push(sis[*i], tuple.clone())?,
            W3Event::T(tuple) => session.push(t, tuple.clone())?,
            W3Event::Channel(_) => unreachable!(),
        }
    }
    session.finish()?;
    let without_rate = rr_events.len() as f64 / start.elapsed().as_secs_f64();
    let without_results = session.collect_all().len();
    println!(
        "  without channel: {:>10.0} events/s ({} results)",
        without_rate, without_results
    );

    assert_eq!(
        with_results, without_results,
        "both plans must produce identical result counts"
    );
    println!(
        "\nchannel speedup: {:.1}x on identical content (paper reports roughly an order of magnitude, Figure 10(c))",
        with_rate / without_rate
    );
    Ok(())
}
