//! Quickstart: register a handful of continuous queries, let the rule-based
//! optimizer share their work, and stream tuples through one session —
//! with each query's owner receiving exactly their results through a
//! subscription.
//!
//! Run with `cargo run --example quickstart`.

use rumor::{EventRuntime, OptimizerConfig, Rumor, Tuple};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Create the engine and register queries in the query language.
    //    Ten lookups against the same stream plus one running aggregate.
    let mut engine = Rumor::new(OptimizerConfig::default());
    let mut script = String::from("CREATE STREAM trades (ticker INT, price INT, size INT);\n");
    for t in 0..10 {
        script.push_str(&format!(
            "QUERY watch{t} AS SELECT * FROM trades WHERE ticker = {t};\n"
        ));
    }
    script.push_str(
        "QUERY volume AS SELECT ticker, SUM(size) AS vol FROM trades [RANGE 100] GROUP BY ticker;\n",
    );
    engine.execute(&script)?;

    // 2. Optimize: the ten selections collapse into ONE predicate-indexed
    //    multi-operator (rule sσ of the paper) — each arriving trade does a
    //    hash probe instead of ten predicate evaluations.
    let before = engine.plan().member_count();
    let trace = engine.optimize()?;
    println!("rewrites applied: {}", trace.entries.len());
    for entry in &trace.entries {
        println!(
            "  {} merged {} m-ops -> {}",
            entry.rule,
            entry.group.len(),
            entry.target
        );
    }
    println!(
        "plan: {} member operators in {} m-ops (was {} separate operators)\n",
        engine.plan().member_count(),
        engine.plan().mop_count(),
        before
    );
    println!("{}", engine.render_plan());

    // 3. Open a session (single-threaded here; `.workers(n)` would run the
    //    same plan on a parallel worker pool) and subscribe two "users" to
    //    their queries BEFORE pushing, so each subscription sees its
    //    query's entire output.
    let mut session = engine.session().build()?;
    let mut watch2 = session.subscribe_named("watch2")?;
    let mut volume = session.subscribe_named("volume")?;

    // 4. Stream some trades through the shared plan.
    let trades = engine.source_id("trades").expect("registered above");
    for ts in 0..20u64 {
        let ticker = (ts % 4) as i64;
        let price = 100 + (ts % 7) as i64;
        let size = 10 * (1 + ts % 3) as i64;
        session.push(trades, Tuple::ints(ts, &[ticker, price, size]))?;
    }
    session.finish()?;

    // 5. Each subscriber drains exactly their query's results; everything
    //    the other nine watch queries produced stays in the catch-all.
    println!("watch2 results (ticker = 2):");
    for t in watch2.drain() {
        println!("  {t}");
    }
    let volumes = volume.drain();
    println!("last running volumes:");
    for t in volumes.iter().rev().take(4).rev() {
        println!("  {t}");
    }
    println!(
        "unsubscribed results left for collect_all: {}",
        session.collect_all().len()
    );
    Ok(())
}
