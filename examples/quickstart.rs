//! Quickstart: register a handful of continuous queries, let the rule-based
//! optimizer share their work, and stream tuples through the result.
//!
//! Run with `cargo run --example quickstart`.

use rumor::{CollectingSink, OptimizerConfig, Rumor, Tuple};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Create the engine and register queries in the query language.
    //    Ten lookups against the same stream plus one running aggregate.
    let mut engine = Rumor::new(OptimizerConfig::default());
    let mut script = String::from("CREATE STREAM trades (ticker INT, price INT, size INT);\n");
    for t in 0..10 {
        script.push_str(&format!(
            "QUERY watch{t} AS SELECT * FROM trades WHERE ticker = {t};\n"
        ));
    }
    script.push_str(
        "QUERY volume AS SELECT ticker, SUM(size) AS vol FROM trades [RANGE 100] GROUP BY ticker;\n",
    );
    engine.execute(&script)?;

    // 2. Optimize: the ten selections collapse into ONE predicate-indexed
    //    multi-operator (rule sσ of the paper) — each arriving trade does a
    //    hash probe instead of ten predicate evaluations.
    let before = engine.plan().member_count();
    let trace = engine.optimize()?;
    println!("rewrites applied: {}", trace.entries.len());
    for entry in &trace.entries {
        println!(
            "  {} merged {} m-ops -> {}",
            entry.rule,
            entry.group.len(),
            entry.target
        );
    }
    println!(
        "plan: {} member operators in {} m-ops (was {} separate operators)\n",
        engine.plan().member_count(),
        engine.plan().mop_count(),
        before
    );
    println!("{}", engine.render_plan());

    // 3. Stream some trades through the shared plan.
    let mut rt = engine.runtime()?;
    let mut sink = CollectingSink::default();
    let trades = engine.source_id("trades").expect("registered above");
    for ts in 0..20u64 {
        let ticker = (ts % 4) as i64;
        let price = 100 + (ts % 7) as i64;
        let size = 10 * (1 + ts % 3) as i64;
        rt.push(trades, Tuple::ints(ts, &[ticker, price, size]), &mut sink)?;
    }

    // 4. Inspect per-query results.
    let watch2 = engine.query_id("watch2").expect("registered above");
    println!("watch2 results (ticker = 2):");
    for t in sink.of(watch2) {
        println!("  {t}");
    }
    let volume = engine.query_id("volume").expect("registered above");
    println!("last running volumes:");
    for t in sink.of(volume).iter().rev().take(4).rev() {
        println!("  {t}");
    }
    Ok(())
}
