//! The paper's motivating scenario (§4.1): performance monitoring with
//! *hybrid* queries that need both CQL-style windows (smoothing) and event
//! pattern matching (ramp detection).
//!
//! This example registers several instances of the paper's Query 2 — "find
//! processes whose smoothed CPU load ramps up monotonically from below a
//! per-query start threshold" — over a simulated performance-counter
//! stream, and shows how the optimizer shares the aggregation, indexes the
//! starting conditions, and (with channels) runs ONE µ pattern matcher for
//! all queries — while each alert query's owner receives their alerts
//! through their own subscription.
//!
//! Run with `cargo run --example perf_monitoring`.

use rumor::workloads::perfmon::{generate, PerfmonConfig};
use rumor::{EventRuntime, OptimizerConfig, Rumor};

fn build(n_queries: usize, config: OptimizerConfig) -> Result<Rumor, Box<dyn std::error::Error>> {
    let mut engine = Rumor::new(config);
    let mut script = String::from(
        "CREATE STREAM cpu (pid INT, load INT);\n\
         DEFINE smoothed AS\n\
           SELECT pid, AVG(load) AS load FROM cpu [RANGE 60] GROUP BY pid;\n",
    );
    // Each query differs only in its starting condition (Query 2, §4.1).
    for i in 0..n_queries {
        let threshold = 10 + 5 * i;
        script.push_str(&format!(
            "DEFINE ramp{i} AS\n\
               PATTERN smoothed AS x WHERE x.load < {threshold}.0 AND x.pid != -{q}\n\
               THEN ITERATE smoothed AS y\n\
               FILTER x.pid != y.pid\n\
               REBIND x.pid = y.pid AND y.load > x.load\n\
               SET load = y.load\n\
               WITHIN 300;\n\
             QUERY alert{i} AS SELECT * FROM ramp{i} WHERE load > 50.0;\n",
            q = i + 1,
        ));
    }
    engine.execute(&script)?;
    Ok(engine)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 6;

    // Optimize once with the full rule set (channels on) and once without.
    for (label, config) in [
        ("with channels (Figure 6(c))", OptimizerConfig::default()),
        (
            "without channels (Figure 6(b))",
            OptimizerConfig::without_channels(),
        ),
    ] {
        let mut engine = build(n, config)?;
        let trace = engine.optimize()?;
        println!(
            "{label}: {} m-ops, {} member operators, rules fired: {:?}",
            engine.plan().mop_count(),
            engine.plan().member_count(),
            trace.entries.iter().map(|e| e.rule).collect::<Vec<_>>()
        );
    }

    // Run the channelized plan over a simulated 10-minute trace of 16
    // processes. Each alert query is a separate "user": subscribe each
    // before pushing, so every owner sees their whole alert stream.
    let mut engine = build(n, OptimizerConfig::default())?;
    engine.optimize()?;
    let mut session = engine.session().build()?;
    let mut alerts = Vec::new();
    for i in 0..n {
        alerts.push(session.subscribe_named(&format!("alert{i}"))?);
    }
    let cpu = engine.source_id("cpu").expect("registered above");
    let trace = generate(&PerfmonConfig {
        processes: 16,
        duration_secs: 600,
        seed: 42,
    });
    for tuple in &trace {
        session.push(cpu, tuple.clone())?;
    }
    session.finish()?;
    println!("\nprocessed {} readings", trace.len());
    for (i, sub) in alerts.iter_mut().enumerate() {
        let results = sub.drain();
        println!(
            "alert{i} (start threshold {}): {} ramp alerts{}",
            10 + 5 * i,
            results.len(),
            results
                .first()
                .map(|t| format!(", first: {t}"))
                .unwrap_or_default()
        );
    }
    Ok(())
}
