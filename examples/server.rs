//! Serving one shared plan to many clients over TCP: spawn a
//! `rumor-server`, connect two tenants, and watch the optimizer fold
//! their queries into shared m-ops even though they arrived on
//! different connections.
//!
//! Run with `cargo run --example server`.

use rumor::server::{Client, Server, ServerConfig};
use rumor::{OptimizerConfig, Rumor, Tuple};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Seed an engine with the schema and hand it to the server. The
    //    server owns the engine from here: registrations from any client
    //    integrate into the one shared plan, live.
    let mut engine = Rumor::new(OptimizerConfig::default());
    engine.execute("CREATE STREAM trades (ticker INT, price INT, size INT);")?;
    let server = Server::spawn(engine, ServerConfig::default())?;
    println!("serving on {}", server.addr());

    // 2. Two independent tenants connect and register queries. Both
    //    watch ticker 7 — the predicate-indexed selection m-op serves
    //    both subscriptions with one hash probe per trade.
    let mut alice = Client::connect(server.addr())?;
    let mut bo = Client::connect(server.addr())?;
    alice.register("watch7", "SELECT * FROM trades WHERE ticker = 7")?;
    alice.register("big", "SELECT * FROM trades WHERE size > 25")?;
    bo.register("watch7", "SELECT * FROM trades WHERE ticker = 7")?;

    // 3. One of them feeds the stream (any connection may push; events
    //    fan out to every registered query).
    let src = alice.source("trades").expect("created above");
    for ts in 0..20u64 {
        let ticker = (ts % 10) as i64;
        let size = 10 * (1 + ts % 3) as i64;
        alice.push(src, Tuple::ints(ts, &[ticker, 100, size]))?;
    }

    // 4. FLUSH is the barrier: once it returns, every result of the
    //    pushed events is buffered client-side, ready to drain.
    alice.flush()?;
    bo.flush()?;
    println!("\nalice watch7: {:?}", alice.drain("watch7").len());
    println!("alice big:    {:?}", alice.drain("big").len());
    println!("bo    watch7: {:?}", bo.drain("watch7").len());

    // 5. EXPLAIN shows the live shared plan — the same rendering an
    //    embedded session would give, served over the wire.
    println!("\n{}", alice.explain()?);

    // 6. Graceful teardown: clients say BYE (the server drains their
    //    pending results first), then the server drains and closes.
    alice.bye()?;
    bo.bye()?;
    server.shutdown()?;
    Ok(())
}
