//! # RUMOR — Rule-Based Multi-Query Optimization
//!
//! A from-scratch Rust implementation of the RUMOR framework from
//! *Rule-Based Multi-Query Optimization* (Hong, Riedewald, Koch, Gehrke,
//! Demers — EDBT 2009): a stream-processing engine in which **one** query
//! plan implements **all** registered continuous queries, and a rule-based
//! optimizer merges operators that can share state and computation.
//!
//! ## The three RUMOR abstractions (Table 2 of the paper)
//!
//! | traditional          | RUMOR                            |
//! |----------------------|----------------------------------|
//! | physical operator    | physical multi-operator (m-op)   |
//! | transformation rule  | multi-query rule (m-rule)        |
//! | stream               | channel (+ membership component) |
//!
//! ## Quick start
//!
//! One shared plan, many query owners: each owner subscribes to *their*
//! query and receives exactly its results; everything unclaimed lands in
//! the session-wide [`Session::collect_all`] catch-all.
//!
//! ```
//! use rumor::{EventRuntime, OptimizerConfig, Rumor, Tuple};
//!
//! let mut engine = Rumor::new(OptimizerConfig::default());
//! engine
//!     .execute(
//!         "CREATE STREAM sensors (station INT, temp INT);
//!          QUERY hot  AS SELECT * FROM sensors WHERE temp > 35;
//!          QUERY s7   AS SELECT * FROM sensors WHERE station = 7;
//!          QUERY s9   AS SELECT * FROM sensors WHERE station = 9;",
//!     )
//!     .unwrap();
//! // One predicate-indexed m-op now serves all three selections.
//! let trace = engine.optimize().unwrap();
//! assert_eq!(trace.count("s_sigma"), 1);
//!
//! let mut session = engine.session().build().unwrap();
//! let mut hot = session.subscribe_named("hot").unwrap();
//! let src = engine.source_id("sensors").unwrap();
//! session.push(src, Tuple::ints(0, &[7, 40])).unwrap();
//! session.finish().unwrap();
//! assert_eq!(hot.drain().len(), 1);          // `hot` fired for its owner
//! assert_eq!(session.collect_all().len(), 1); // unsubscribed `s7` fired too
//! ```
//!
//! ## Crate map
//!
//! * `rumor-types` — values, tuples, schemas, membership bit vectors.
//! * `rumor-expr` — expressions, predicates, schema maps.
//! * `rumor-core` — plan graph, m-ops, channels, the m-rule optimizer.
//! * `rumor-lang` — the CQL-style + event-pattern query language.
//! * `rumor-ops` — physical implementations of every shared m-op.
//! * `rumor-engine` — the push-based runtime ([`Rumor`] facade, the
//!   [`EventRuntime`] session API).
//! * `rumor-server` — the std-only TCP front door multiplexing many
//!   network clients onto one shared session (see [`server`]).
//! * `rumor-cayuga` — the Cayuga-style automaton baseline engine (§4/§5).
//! * `rumor-workloads` — the paper's benchmark workloads (§5).
//! * `rumor-bench` — figure regeneration plus the engine-path throughput
//!   harness behind `BENCH_throughput.json`.
//!
//! ## One execution API: sessions
//!
//! All execution goes through [`Rumor::session`]: the builder picks the
//! engine, the resulting [`Session`] speaks the uniform [`EventRuntime`]
//! lifecycle (`push` / `push_batch` / `push_batch_shared` / `flush` /
//! `finish` / `update_plan`), and results route to per-query
//! [`Subscription`]s. Every configuration produces identical per-query
//! results — the differential conformance harness (`tests/conformance.rs`)
//! pins that byte-for-byte:
//!
//! * `session().build()?` — the single-threaded push engine. Fully
//!   stateless plans batch at channel-run granularity under
//!   [`EventRuntime::push_batch`]; stateful plans run *hybrid* (stateless
//!   prefix batched, timestamp-ordered per-event delivery from the first
//!   stateful m-op; strict fallback where exactness cannot be proven).
//! * `session().workers(n).build()?` — the persistent streaming shard
//!   pool ([`StreamingShardedRuntime`] underneath): the shared plan is
//!   cloned across `n` long-lived workers behind bounded queues with
//!   backpressure; tuples are routed by the static partitioning analysis
//!   ([`rumor_core::partition::analyze`]) — round-robin for stateless
//!   components, hashed on consistent keys for key-partitionable ones,
//!   worker 0 for the stateful subgraph of pinned ones. Tune with
//!   [`SessionBuilder::streaming`] ([`StreamingConfig`]).
//! * `session().workers(n).one_shot().build()?` — the one-shot sharded
//!   runtime ([`ShardedRuntime`] underneath): same router, scoped threads
//!   per batch call; for inputs already in memory as a few large batches.
//!
//! See the [`SessionBuilder`] docs for when to pick which engine.
//! Subscriptions are delivered at *delivery points* — immediately for
//! the single-threaded session, at `flush`/`finish` barriers for the
//! parallel ones — and anything produced while a query had no live
//! subscriber stays retrievable via [`Session::collect_all`].
//!
//! ## Observability
//!
//! Every session keeps always-on runtime counters (compile them out with
//! the engine crate's `stats-off` feature). [`Session::stats`] returns a
//! [`StatsSnapshot`] — per-m-op events in/out and selectivity, dispatch
//! style (batched vs per-event calls) and adaptive-gate state, operator
//! state sizes, queue pressure and barrier latencies on the parallel
//! engines, per-query delivery counts, and per-query *sharing
//! attribution*: which m-ops each query shares, their fan-in, and the
//! events saved versus running every query on a private plan — the
//! paper's benefit metric. Snapshots are plain data: diff two with
//! [`StatsSnapshot::diff`] to meter an interval, or serialize with
//! [`StatsSnapshot::to_json`]. [`Session::explain`] renders the live
//! plan annotated with the same counters:
//!
//! ```
//! use rumor::{EventRuntime, OptimizerConfig, Rumor, Tuple};
//!
//! let mut engine = Rumor::new(OptimizerConfig::default());
//! engine
//!     .execute(
//!         "CREATE STREAM sensors (station INT, temp INT);
//!          QUERY s7 AS SELECT * FROM sensors WHERE station = 7;
//!          QUERY s9 AS SELECT * FROM sensors WHERE station = 9;",
//!     )
//!     .unwrap();
//! engine.optimize().unwrap();
//! let mut session = engine.session().build().unwrap();
//! let src = engine.source_id("sensors").unwrap();
//! for ts in 0..20 {
//!     session.push(src, Tuple::ints(ts, &[(ts % 3) as i64 + 7, 30])).unwrap();
//! }
//! session.finish().unwrap();
//!
//! let stats = session.stats().unwrap();
//! assert_eq!(stats.events_in, 20);
//! // Both selections ride one shared σ-index m-op: 20 events enter it
//! // once instead of twice — 20 events saved, attributed to each query.
//! assert!(stats.sharing.iter().any(|q| !q.shared.is_empty()));
//! println!("{}", session.explain().unwrap());
//! println!("{}", stats.to_json());
//! ```
//!
//! ### Time domain: latency, per-m-op time share, metering, tracing
//!
//! The same snapshot carries the time domain: per-query ingest→delivery
//! latency [`Histogram`]s (log-bucketed, mergeable, p50/p90/p99/max),
//! flush-barrier and plan-swap epoch latencies, and sampled per-m-op
//! wall-time attribution (one dispatch in [`TIME_SAMPLE_EVERY`] is
//! timed), which `explain` renders as a per-op time-share bar and the
//! sharing attribution converts into *time saved*. For continuous
//! monitoring, a [`Meter`] diffs successive snapshots and emits one JSON
//! line per interval to a pluggable [`MeterSink`]:
//!
//! ```
//! use rumor::{CollectingMeterSink, EventRuntime, Meter, OptimizerConfig, Rumor, Tuple};
//!
//! let mut engine = Rumor::new(OptimizerConfig::default());
//! engine
//!     .execute(
//!         "CREATE STREAM sensors (station INT, temp INT);
//!          QUERY s7 AS SELECT * FROM sensors WHERE station = 7;",
//!     )
//!     .unwrap();
//! engine.optimize().unwrap();
//! let mut session = engine.session().build().unwrap();
//! let src = engine.source_id("sensors").unwrap();
//! let mut meter = Meter::new(CollectingMeterSink::default());
//!
//! // First tick establishes the baseline; each later tick emits the
//! // interval diff as one JSON line.
//! assert!(!meter.tick(session.stats().unwrap()));
//! for ts in 0..10 {
//!     session.push(src, Tuple::ints(ts, &[7, 30])).unwrap();
//! }
//! session.flush().unwrap();
//! assert!(meter.tick(session.stats().unwrap()));
//! let lines = meter.into_sink().lines;
//! assert_eq!(lines.len(), 1);
//! assert!(lines[0].contains("\"events_in\": 10"), "{}", lines[0]);
//! session.finish().unwrap();
//! ```
//!
//! When something *changed* — a gate froze, a swap stalled, backpressure
//! engaged — [`Session::trace`] dumps the bounded flight recorder as JSON
//! lines: timestamped runtime transitions journaled across the session,
//! every executor clone, and the streaming pool, merged on one
//! process-wide clock:
//!
//! ```
//! use rumor::{EventRuntime, OptimizerConfig, Rumor, Tuple};
//!
//! let mut engine = Rumor::new(OptimizerConfig::default());
//! engine
//!     .execute(
//!         "CREATE STREAM sensors (station INT, temp INT);
//!          QUERY s7 AS SELECT * FROM sensors WHERE station = 7;",
//!     )
//!     .unwrap();
//! engine.optimize().unwrap();
//! let mut session = engine.session().build().unwrap();
//! let src = engine.source_id("sensors").unwrap();
//! session.push(src, Tuple::ints(0, &[7, 30])).unwrap();
//! // Journal an application milestone onto the same timeline, then add
//! // a query live: the swap phases land in the trace around it.
//! session.trace_event("app_note", "warmup done");
//! engine
//!     .execute("QUERY s9 AS SELECT * FROM sensors WHERE station = 9;")
//!     .unwrap();
//! session.update_plan(engine.plan()).unwrap();
//! session.finish().unwrap();
//! let trace = session.trace().unwrap();
//! if rumor::STATS_COMPILED {
//!     assert!(trace.contains("\"kind\": \"app_note\""), "{trace}");
//!     assert!(trace.contains("\"kind\": \"swap_complete\""), "{trace}");
//! }
//! ```
//!
//! ## Serving sessions over the network
//!
//! The sharing benefit the paper measures grows with the *concurrent
//! query population*, and a realistic population comes from many
//! independent clients. The [`server`] module (crate `rumor-server`)
//! puts one engine + [`Session`] behind a TCP front door: clients speak
//! a small length-prefixed binary protocol (`HELLO` / `REGISTER` /
//! `PUSH` / `FLUSH` / `STATS` / `EXPLAIN` / `BYE`), registrations from
//! any connection integrate into the one shared plan live, and results
//! stream back on each registrant's own connection. One ingest thread
//! owns the session — queries from different tenants share m-ops exactly
//! as if one process had registered them all. Slow consumers shed from
//! their own bounded outbox (reported via `SHED` and the stats
//! envelope), never stalling the engine; shutdown is a graceful drain
//! that delivers every buffered result before `GOODBYE`. The in-crate
//! blocking [`server::Client`] mirrors the embedded session API, and the
//! loopback conformance suite pins server-vs-embedded results
//! byte-for-byte:
//!
//! ```
//! use rumor::server::{Client, Server, ServerConfig};
//! use rumor::{OptimizerConfig, Rumor, Tuple};
//!
//! let mut engine = Rumor::new(OptimizerConfig::default());
//! engine
//!     .execute("CREATE STREAM sensors (station INT, temp INT);")
//!     .unwrap();
//! let server = Server::spawn(engine, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! client.register("s7", "SELECT * FROM sensors WHERE station = 7").unwrap();
//! let src = client.source("sensors").unwrap();
//! client.push(src, Tuple::ints(0, &[7, 30])).unwrap();
//! client.push(src, Tuple::ints(1, &[9, 31])).unwrap();
//! client.flush().unwrap(); // barrier: results now buffered locally
//! assert_eq!(client.drain("s7"), vec![Tuple::ints(0, &[7, 30])]);
//! client.bye().unwrap();
//! server.shutdown().unwrap();
//! ```
//!
//! The `multi_tenant` row of `BENCH_throughput.json` measures this path
//! end to end: hundreds of loopback clients, 1024 Zipf-popular queries,
//! aggregate throughput, per-client flush latency, and the sharing
//! attribution at that population.
//!
//! ## Dynamic query lifecycle
//!
//! Queries can be added and removed *while sessions are live*:
//! [`Rumor::add_query`] merges a new query into the optimized shared plan
//! incrementally (`Optimizer::integrate`, scoped m-rule application with
//! a [`RewriteTrace`] per integration), [`Rumor::remove_query`] — or a
//! `DROP QUERY name;` statement — prunes a retired query's operators, and
//! [`EventRuntime::update_plan`] hot-swaps the live session in place
//! (epoch protocol on the worker pools: quiesce at a flush barrier,
//! install, resume). Operators untouched by the delta keep their state —
//! a windowed sequence keeps matching straight through an unrelated
//! add/remove; the churn conformance suite pins this byte-identically.
//!
//! `BENCH_throughput.json` (regenerated by
//! `cargo run --release -p rumor-bench --bin throughput`) records the
//! measured per-path throughput, including the dispatch overhead of live
//! subscriptions versus the catch-all.

#![warn(missing_docs)]

pub use rumor_cayuga::{Automaton, CayugaEngine};
pub use rumor_core::{
    estimate_cost, estimate_cost_with, AggFunc, AggSpec, ChannelTuple, Integration, IterSpec,
    JoinSpec, LogicalPlan, MopCost, MopKind, OpDef, Optimizer, OptimizerConfig, PartitionKeys,
    PartitionScheme, PinScope, PlanCost, PlanDelta, PlanGraph, RewriteTrace, SearchStrategy,
    SelectivityModel, SeqSpec, SourceRoute, Verdict,
};
pub use rumor_engine::{
    measure, measure_batched, trace_clock_nanos, trace_json_lines, CollectingMeterSink,
    CollectingSink, ConeScope, CountingSink, DiscardSink, EventRuntime, ExecStatsReport,
    ExecutablePlan, FeedMode, FileMeterSink, GateStats, Histogram, InputEvent, LocalRuntime,
    Measurement, MergeSink, Meter, MeterSink, OpStats, Protocol, QuerySharing, QuerySink,
    QueryStats, Rumor, RuntimeStats, Session, SessionBuilder, SessionConfig, ShardedRuntime,
    SharedOpRef, StatsSnapshot, StderrMeterSink, StreamingConfig, StreamingShardedRuntime,
    Subscription, TraceEvent, TraceRing, STATS_COMPILED, TIME_SAMPLE_EVERY,
};
pub use rumor_expr::{CmpOp, EvalCtx, Expr, NamedExpr, Predicate, SchemaMap};
pub use rumor_types::{
    ChannelId, Field, Membership, MopId, QueryId, RumorError, Schema, SourceId, StreamId,
    Timestamp, Tuple, Value, ValueType,
};

/// The TCP session server and its blocking client (crate
/// `rumor-server`): many network clients multiplexed onto one shared
/// plan. See the crate-level "Serving sessions over the network"
/// section.
pub mod server {
    pub use rumor_server::{Client, Reply, Request, Server, ServerConfig, PROTOCOL_VERSION};
}

/// Workload generators for the paper's evaluation (re-exported for
/// examples and downstream experimentation).
pub mod workloads {
    pub use rumor_workloads::*;
}

/// The query language layer (parsing and lowering).
pub mod lang {
    pub use rumor_lang::*;
}
