//! # RUMOR — Rule-Based Multi-Query Optimization
//!
//! A from-scratch Rust implementation of the RUMOR framework from
//! *Rule-Based Multi-Query Optimization* (Hong, Riedewald, Koch, Gehrke,
//! Demers — EDBT 2009): a stream-processing engine in which **one** query
//! plan implements **all** registered continuous queries, and a rule-based
//! optimizer merges operators that can share state and computation.
//!
//! ## The three RUMOR abstractions (Table 2 of the paper)
//!
//! | traditional          | RUMOR                            |
//! |----------------------|----------------------------------|
//! | physical operator    | physical multi-operator (m-op)   |
//! | transformation rule  | multi-query rule (m-rule)        |
//! | stream               | channel (+ membership component) |
//!
//! ## Quick start
//!
//! ```
//! use rumor::{OptimizerConfig, Rumor, CollectingSink, Tuple};
//!
//! let mut engine = Rumor::new(OptimizerConfig::default());
//! engine
//!     .execute(
//!         "CREATE STREAM sensors (station INT, temp INT);
//!          QUERY hot  AS SELECT * FROM sensors WHERE temp > 35;
//!          QUERY s7   AS SELECT * FROM sensors WHERE station = 7;
//!          QUERY s9   AS SELECT * FROM sensors WHERE station = 9;",
//!     )
//!     .unwrap();
//! // One predicate-indexed m-op now serves all three selections.
//! let trace = engine.optimize().unwrap();
//! assert_eq!(trace.count("s_sigma"), 1);
//!
//! let mut rt = engine.runtime().unwrap();
//! let mut sink = CollectingSink::default();
//! let src = engine.source_id("sensors").unwrap();
//! rt.push(src, Tuple::ints(0, &[7, 40]), &mut sink).unwrap();
//! assert_eq!(sink.results.len(), 2); // `hot` and `s7` both fire
//! ```
//!
//! ## Crate map
//!
//! * `rumor-types` — values, tuples, schemas, membership bit vectors.
//! * `rumor-expr` — expressions, predicates, schema maps.
//! * `rumor-core` — plan graph, m-ops, channels, the m-rule optimizer.
//! * `rumor-lang` — the CQL-style + event-pattern query language.
//! * `rumor-ops` — physical implementations of every shared m-op.
//! * `rumor-engine` — the push-based runtime ([`Rumor`] facade).
//! * `rumor-cayuga` — the Cayuga-style automaton baseline engine (§4/§5).
//! * `rumor-workloads` — the paper's benchmark workloads (§5).
//! * `rumor-bench` — figure regeneration plus the engine-path throughput
//!   harness behind `BENCH_throughput.json`.
//!
//! ## Batched and partition-parallel execution
//!
//! Event dispatch is batch-granular wherever semantics allow:
//!
//! * [`ExecutablePlan::push_batch`] feeds a timestamp-ordered event slice
//!   through the plan. On stateless plans (every compiled m-op reports
//!   [`rumor_core::MultiOp::is_stateless`]) events are routed as runs of
//!   consecutive same-channel tuples, one
//!   [`rumor_core::MultiOp::process_batch`] call per consumer per run.
//!   Stateful plans run *hybrid*: the stateless prefix still batches and
//!   only events reaching a stateful m-op drop to per-event delivery in
//!   timestamp order (strict per-event fallback where that cannot be
//!   proven exact). Per-query results are identical to per-event
//!   [`ExecutablePlan::push`] either way.
//! * [`ShardedRuntime`] (via [`Rumor::sharded_runtime`]) scales by *data*
//!   parallelism: the shared plan is cloned across `n` workers and each
//!   tuple is routed by the static partitioning analysis
//!   ([`rumor_core::partition::analyze`]) — round-robin for stateless
//!   components, hashed on consistent stateful-operator keys for
//!   key-partitionable ones, worker 0 for the stateful subgraph of pinned
//!   ones (stateless sibling queries of a pinned component still
//!   round-robin, see [`SourceRoute::PinnedSplit`]) — with per-worker
//!   sinks folded deterministically at drain time ([`MergeSink`]). Each
//!   `push_batch` call runs the workers on scoped threads: right for a
//!   few large in-memory batches.
//! * [`StreamingShardedRuntime`] (via [`Rumor::streaming_runtime`]) runs
//!   the same router over a *persistent* worker pool: long-lived workers
//!   behind bounded queues with backpressure, and a streaming lifecycle —
//!   `push`/`push_batch` as events arrive, `flush` as a drain barrier,
//!   `finish` for the deterministically merged results. Prefer it
//!   whenever events arrive continuously or in small batches, where
//!   per-call thread spawning would dominate.
//! * [`run_pipelined_config`] is the pipelined runner rebuilt on
//!   shard-local stages (a streaming pass over a prepared input); the
//!   former topological-depth staging lost to single-threaded execution
//!   and was retired.
//!
//! Every mode above produces identical per-query results — the
//! differential conformance harness (`tests/conformance.rs`) pins that
//! equivalence across the full workload matrix.
//!
//! ## Dynamic query lifecycle
//!
//! Queries can be added and removed *while runtimes are live*:
//! [`Rumor::add_query`] merges a new query into the optimized shared plan
//! incrementally (`Optimizer::integrate`, scoped m-rule application with
//! a [`RewriteTrace`] per integration), [`Rumor::remove_query`] — or a
//! `DROP QUERY name;` statement — prunes a retired query's operators, and
//! the resulting [`PlanDelta`] hot-swaps compiled runtimes in place:
//! [`ExecutablePlan::apply_delta`] for the single-threaded engine, and an
//! epoch protocol (`update_plan`: quiesce at a flush barrier, install,
//! resume) for both shard runtimes. Operators untouched by the delta keep
//! their state — a windowed sequence keeps matching straight through an
//! unrelated add/remove; the churn conformance suite pins this
//! byte-identically against fresh-compile oracles.
//!
//! `BENCH_throughput.json` (regenerated by
//! `cargo run --release -p rumor-bench --bin throughput`) records the
//! measured per-path throughput.

#![warn(missing_docs)]

pub use rumor_cayuga::{Automaton, CayugaEngine};
pub use rumor_core::{
    AggFunc, AggSpec, ChannelTuple, Integration, IterSpec, JoinSpec, LogicalPlan, MopKind, OpDef,
    Optimizer, OptimizerConfig, PartitionKeys, PartitionScheme, PinScope, PlanDelta, PlanGraph,
    RewriteTrace, SeqSpec, SourceRoute, Verdict,
};
pub use rumor_engine::{
    measure, measure_batched, run_pipelined, run_pipelined_config, CollectingSink, ConeScope,
    CountingSink, DiscardSink, ExecutablePlan, FeedMode, InputEvent, Measurement, MergeSink,
    PipelineConfig, Protocol, QuerySink, Rumor, ShardedRuntime, StreamingConfig,
    StreamingShardedRuntime,
};
pub use rumor_expr::{CmpOp, EvalCtx, Expr, NamedExpr, Predicate, SchemaMap};
pub use rumor_types::{
    ChannelId, Field, Membership, MopId, QueryId, Schema, SourceId, StreamId, Timestamp, Tuple,
    Value, ValueType,
};

/// Workload generators for the paper's evaluation (re-exported for
/// examples and downstream experimentation).
pub mod workloads {
    pub use rumor_workloads::*;
}

/// The query language layer (parsing and lowering).
pub mod lang {
    pub use rumor_lang::*;
}
