//! # RUMOR — Rule-Based Multi-Query Optimization
//!
//! A from-scratch Rust implementation of the RUMOR framework from
//! *Rule-Based Multi-Query Optimization* (Hong, Riedewald, Koch, Gehrke,
//! Demers — EDBT 2009): a stream-processing engine in which **one** query
//! plan implements **all** registered continuous queries, and a rule-based
//! optimizer merges operators that can share state and computation.
//!
//! ## The three RUMOR abstractions (Table 2 of the paper)
//!
//! | traditional          | RUMOR                            |
//! |----------------------|----------------------------------|
//! | physical operator    | physical multi-operator (m-op)   |
//! | transformation rule  | multi-query rule (m-rule)        |
//! | stream               | channel (+ membership component) |
//!
//! ## Quick start
//!
//! ```
//! use rumor::{OptimizerConfig, Rumor, CollectingSink, Tuple};
//!
//! let mut engine = Rumor::new(OptimizerConfig::default());
//! engine
//!     .execute(
//!         "CREATE STREAM sensors (station INT, temp INT);
//!          QUERY hot  AS SELECT * FROM sensors WHERE temp > 35;
//!          QUERY s7   AS SELECT * FROM sensors WHERE station = 7;
//!          QUERY s9   AS SELECT * FROM sensors WHERE station = 9;",
//!     )
//!     .unwrap();
//! // One predicate-indexed m-op now serves all three selections.
//! let trace = engine.optimize().unwrap();
//! assert_eq!(trace.count("s_sigma"), 1);
//!
//! let mut rt = engine.runtime().unwrap();
//! let mut sink = CollectingSink::default();
//! let src = engine.source_id("sensors").unwrap();
//! rt.push(src, Tuple::ints(0, &[7, 40]), &mut sink).unwrap();
//! assert_eq!(sink.results.len(), 2); // `hot` and `s7` both fire
//! ```
//!
//! ## Crate map
//!
//! * `rumor-types` — values, tuples, schemas, membership bit vectors.
//! * `rumor-expr` — expressions, predicates, schema maps.
//! * `rumor-core` — plan graph, m-ops, channels, the m-rule optimizer.
//! * `rumor-lang` — the CQL-style + event-pattern query language.
//! * `rumor-ops` — physical implementations of every shared m-op.
//! * `rumor-engine` — the push-based runtime ([`Rumor`] facade).
//! * `rumor-cayuga` — the Cayuga-style automaton baseline engine (§4/§5).
//! * `rumor-workloads` — the paper's benchmark workloads (§5).

#![warn(missing_docs)]

pub use rumor_cayuga::{Automaton, CayugaEngine};
pub use rumor_core::{
    AggFunc, AggSpec, ChannelTuple, IterSpec, JoinSpec, LogicalPlan, MopKind, OpDef, Optimizer,
    OptimizerConfig, PlanGraph, RewriteTrace, SeqSpec,
};
pub use rumor_engine::{
    CollectingSink, CountingSink, DiscardSink, ExecutablePlan, QuerySink, Rumor,
};
pub use rumor_expr::{CmpOp, EvalCtx, Expr, NamedExpr, Predicate, SchemaMap};
pub use rumor_types::{
    ChannelId, Field, Membership, MopId, QueryId, Schema, SourceId, StreamId, Timestamp, Tuple,
    Value, ValueType,
};

/// Workload generators for the paper's evaluation (re-exported for
/// examples and downstream experimentation).
pub mod workloads {
    pub use rumor_workloads::*;
}

/// The query language layer (parsing and lowering).
pub mod lang {
    pub use rumor_lang::*;
}
